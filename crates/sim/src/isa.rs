//! The top controller's instruction set (paper Fig. 10: top controller,
//! decoder, 3 kB INSTMEM).
//!
//! "Operation flow begins by fetching instructions, input, and weight data
//! from the external DRAM to the GSC. Then, the top controller fetches
//! instructions from INSTMEM and, depending on the tiling strategy, unicasts
//! or broadcasts the input and weight to the IMEM and WMEM."
//!
//! Instructions are fixed 64-bit words: an opcode selecting the engine plus
//! packed operand fields. [`assemble_iteration`] lowers a workload
//! [`IterationPlan`] into a program, and the encoder/decoder round-trips
//! bit-exactly, so INSTMEM capacity can be checked against real schedules.

use serde::{Deserialize, Serialize};

use crate::workload::{DscOp, IterationPlan};

/// A decoded top-controller instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// DMA a tile from GSC/DRAM into IMEM or WMEM (buffer-select in `buf`).
    Load {
        /// Destination: 0 = IMEM, 1 = WMEM, 2 = CVMEM.
        target: u8,
        /// Buffer copy index (double/triple buffering).
        buf: u8,
        /// Transfer length in 32-byte beats (20 bits).
        beats: u32,
    },
    /// Run the SDUE over a tile sequence.
    Mmul {
        /// Row tiles (12 bits).
        row_tiles: u16,
        /// Blocks per row tile (12 bits).
        blocks: u16,
        /// Dot-product k-steps per block (12 bits).
        k_steps: u16,
        /// Merged-block mode (ConMerge vectors drive the switches).
        merged: bool,
    },
    /// Run a CFSE special-function pass.
    Special {
        /// Function selector (0 softmax, 1 layernorm, 2 gelu, 3 residual,
        /// 4 quantize).
        func: u8,
        /// Element count in SIMD beats (24 bits).
        beats: u32,
        /// Two-way 16-bit mode.
        two_way: bool,
    },
    /// Run the EPRE attention prediction for one tile group.
    Predict {
        /// Token rows (12 bits).
        tokens: u16,
        /// Heads (6 bits).
        heads: u8,
    },
    /// Run the CAU's classify/sort/merge pipeline.
    Merge {
        /// Columns presented (12 bits).
        cols: u16,
        /// Row tiles (12 bits).
        tiles: u16,
    },
    /// Write OMEM tiles back to GSC/DRAM.
    Store {
        /// Transfer length in 32-byte beats (20 bits).
        beats: u32,
    },
    /// End of iteration marker (barrier for all engines).
    Barrier,
}

/// Raised when a 64-bit word does not decode to a known instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstructionError {
    word: u64,
}

impl std::fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeInstructionError {}

const OP_LOAD: u64 = 1;
const OP_MMUL: u64 = 2;
const OP_SPECIAL: u64 = 3;
const OP_PREDICT: u64 = 4;
const OP_MERGE: u64 = 5;
const OP_STORE: u64 = 6;
const OP_BARRIER: u64 = 7;

impl Instruction {
    /// Encodes to a 64-bit word: opcode in bits 60..64, operands below.
    pub fn encode(&self) -> u64 {
        match *self {
            Instruction::Load { target, buf, beats } => {
                OP_LOAD << 60
                    | u64::from(target & 0x3) << 24
                    | u64::from(buf & 0x3) << 20
                    | u64::from(beats & 0xF_FFFF)
            }
            Instruction::Mmul {
                row_tiles,
                blocks,
                k_steps,
                merged,
            } => {
                OP_MMUL << 60
                    | u64::from(merged) << 36
                    | u64::from(row_tiles & 0xFFF) << 24
                    | u64::from(blocks & 0xFFF) << 12
                    | u64::from(k_steps & 0xFFF)
            }
            Instruction::Special {
                func,
                beats,
                two_way,
            } => {
                OP_SPECIAL << 60
                    | u64::from(func & 0x7) << 25
                    | u64::from(two_way) << 24
                    | u64::from(beats & 0xFF_FFFF)
            }
            Instruction::Predict { tokens, heads } => {
                OP_PREDICT << 60 | u64::from(tokens & 0xFFF) << 6 | u64::from(heads & 0x3F)
            }
            Instruction::Merge { cols, tiles } => {
                OP_MERGE << 60 | u64::from(cols & 0xFFF) << 12 | u64::from(tiles & 0xFFF)
            }
            Instruction::Store { beats } => OP_STORE << 60 | u64::from(beats & 0xF_FFFF),
            Instruction::Barrier => OP_BARRIER << 60,
        }
    }

    /// Decodes a 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown opcodes.
    pub fn decode(word: u64) -> Result<Self, DecodeInstructionError> {
        match word >> 60 {
            OP_LOAD => Ok(Instruction::Load {
                target: (word >> 24 & 0x3) as u8,
                buf: (word >> 20 & 0x3) as u8,
                beats: (word & 0xF_FFFF) as u32,
            }),
            OP_MMUL => Ok(Instruction::Mmul {
                row_tiles: (word >> 24 & 0xFFF) as u16,
                blocks: (word >> 12 & 0xFFF) as u16,
                k_steps: (word & 0xFFF) as u16,
                merged: word >> 36 & 1 == 1,
            }),
            OP_SPECIAL => Ok(Instruction::Special {
                func: (word >> 25 & 0x7) as u8,
                two_way: word >> 24 & 1 == 1,
                beats: (word & 0xFF_FFFF) as u32,
            }),
            OP_PREDICT => Ok(Instruction::Predict {
                tokens: (word >> 6 & 0xFFF) as u16,
                heads: (word & 0x3F) as u8,
            }),
            OP_MERGE => Ok(Instruction::Merge {
                cols: (word >> 12 & 0xFFF) as u16,
                tiles: (word & 0xFFF) as u16,
            }),
            OP_STORE => Ok(Instruction::Store {
                beats: (word & 0xF_FFFF) as u32,
            }),
            OP_BARRIER => Ok(Instruction::Barrier),
            _ => Err(DecodeInstructionError { word }),
        }
    }
}

/// Lowers one iteration's workload descriptors into an instruction program
/// for a single DSC (the top controller broadcasts the same program to all
/// DSCs with different tile bases).
pub fn assemble_iteration(plan: &IterationPlan, array: usize, lane: usize) -> Vec<Instruction> {
    let mut prog = Vec::new();
    for op in &plan.ops {
        match op {
            DscOp::Mmul(d) => {
                let weight_bytes = d.weight_bytes(1.5);
                if weight_bytes > 0 {
                    prog.push(Instruction::Load {
                        target: 1,
                        buf: 0,
                        beats: (weight_bytes.div_ceil(32)).min(0xF_FFFF_u64) as u32,
                    });
                }
                let dense_blocks = d.n.div_ceil(array as u64) as f64;
                let blocks = (dense_blocks * d.block_frac).ceil().max(1.0) as u16;
                prog.push(Instruction::Mmul {
                    row_tiles: d.m.div_ceil(array as u64).min(0xFFF) as u16,
                    blocks: blocks.min(0xFFF),
                    k_steps: d.k_eff().div_ceil(lane as u64).min(0xFFF) as u16,
                    merged: d.block_frac < 1.0,
                });
                prog.push(Instruction::Store {
                    beats: ((d.m * d.n.min(array as u64 * blocks as u64) * 3 / 2).div_ceil(32))
                        .min(0xF_FFFF_u64) as u32,
                });
            }
            DscOp::Special {
                func,
                elements,
                width,
            } => {
                let f = match func {
                    crate::cfse::SpecialFunc::Softmax => 0,
                    crate::cfse::SpecialFunc::LayerNorm => 1,
                    crate::cfse::SpecialFunc::Gelu => 2,
                    crate::cfse::SpecialFunc::Residual => 3,
                    crate::cfse::SpecialFunc::Quantize => 4,
                };
                prog.push(Instruction::Special {
                    func: f,
                    beats: elements.div_ceil(16).min(0xFF_FFFF_u64) as u32,
                    two_way: *width == crate::cfse::CfseWidth::TwoWay16,
                });
            }
            DscOp::EpPredict { tokens, heads, .. } => prog.push(Instruction::Predict {
                tokens: (*tokens).min(0xFFF_u64) as u16,
                heads: (*heads).min(0x3F) as u8,
            }),
            DscOp::CauGenerate { cols, tiles, .. } => prog.push(Instruction::Merge {
                cols: (*cols).min(0xFFF_u64) as u16,
                tiles: (*tiles).min(0xFFF_u64) as u16,
            }),
        }
    }
    prog.push(Instruction::Barrier);
    prog
}

/// Whether a program fits an instruction memory of `instmem_bytes` (the
/// paper: 3 kB ⇒ 384 64-bit instructions).
pub fn fits_instmem(program: &[Instruction], instmem_bytes: usize) -> bool {
    program.len() * 8 <= instmem_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build_iteration, IterationKindFlags, SparsityProfile};
    use exion_model::config::{ModelConfig, ModelKind, NetworkType};

    #[test]
    fn encode_decode_round_trip() {
        let cases = [
            Instruction::Load {
                target: 1,
                buf: 2,
                beats: 123_456,
            },
            Instruction::Mmul {
                row_tiles: 12,
                blocks: 256,
                k_steps: 64,
                merged: true,
            },
            Instruction::Mmul {
                row_tiles: 1,
                blocks: 1,
                k_steps: 1,
                merged: false,
            },
            Instruction::Special {
                func: 4,
                beats: 9_999_999,
                two_way: true,
            },
            Instruction::Predict {
                tokens: 196,
                heads: 16,
            },
            Instruction::Merge {
                cols: 4000,
                tiles: 13,
            },
            Instruction::Store { beats: 77 },
            Instruction::Barrier,
        ];
        for inst in cases {
            let word = inst.encode();
            assert_eq!(Instruction::decode(word).expect("valid"), inst, "{inst:?}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Instruction::decode(0).is_err());
        assert!(Instruction::decode(0xF << 60).is_err());
    }

    #[test]
    fn assembles_a_real_iteration() {
        let model = ModelConfig::for_kind(ModelKind::Mdm);
        let flags = IterationKindFlags {
            ffn_sparse: true,
            ffn_dense_with_cau: false,
            ep: true,
        };
        let profile = SparsityProfile::analytic(0.95, 0.95, 16);
        let plan = build_iteration(
            &model.paper,
            NetworkType::TransformerOnly,
            false,
            flags,
            &profile,
            1,
        );
        let prog = assemble_iteration(&plan, 16, 16);
        assert!(matches!(prog.last(), Some(Instruction::Barrier)));
        // Sparse FFN-1 MMULs are marked merged.
        let merged_mmuls = prog
            .iter()
            .filter(|i| matches!(i, Instruction::Mmul { merged: true, .. }))
            .count();
        assert!(merged_mmuls > 0, "sparse iteration uses ConMerge mode");
        // Every instruction survives an encode/decode round trip.
        for inst in &prog {
            assert_eq!(Instruction::decode(inst.encode()).unwrap(), *inst);
        }
    }

    #[test]
    fn per_block_program_fits_instmem() {
        // The top controller loops one transformer block's program across all
        // blocks (and all heads share the same attention sub-program with
        // different tile bases), so the 3 kB INSTMEM must hold one *block's*
        // instruction sequence for the largest benchmark.
        let mut model = ModelConfig::for_kind(ModelKind::Dit);
        model.paper.blocks = 1;
        let flags = IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: true,
            ep: true,
        };
        let plan = build_iteration(
            &model.paper,
            NetworkType::TransformerOnly,
            false,
            flags,
            &SparsityProfile::analytic(0.95, 0.95, 16),
            1,
        );
        let prog = assemble_iteration(&plan, 16, 16);
        assert!(
            fits_instmem(&prog, 3 * 1024),
            "{} instructions = {} B exceed 3 kB",
            prog.len(),
            prog.len() * 8
        );
    }
}
