//! Banked on-chip SRAM with double/triple buffering (paper Fig. 10/11).
//!
//! "Input and weight memories (IMEM and WMEM) are double-buffered and
//! triple-buffered, respectively. This buffering scheme is utilized not only
//! to hide the latency of data fetching but also to broadcast the required
//! data to SDUE."

use serde::{Deserialize, Serialize};

/// Buffer replication of a banked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Buffering {
    /// One buffer (no fetch/compute overlap).
    Single,
    /// Two buffers (fetch next tile while computing, IMEM/OMEM).
    Double,
    /// Three buffers (WMEM — also holds the up-to-three weight-column origins
    /// of a twice-merged block).
    Triple,
}

impl Buffering {
    /// Number of buffer copies.
    pub fn copies(&self) -> usize {
        match self {
            Buffering::Single => 1,
            Buffering::Double => 2,
            Buffering::Triple => 3,
        }
    }
}

/// A banked, buffered scratch memory with access accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankedMemory {
    name: String,
    banks: usize,
    bank_bytes: usize,
    buffering: Buffering,
    reads: u64,
    writes: u64,
}

impl BankedMemory {
    /// Creates a memory of `banks × bank_bytes` per buffer copy.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `bank_bytes` is zero.
    pub fn new(name: &str, banks: usize, bank_bytes: usize, buffering: Buffering) -> Self {
        assert!(banks > 0 && bank_bytes > 0, "memory must have capacity");
        Self {
            name: name.to_string(),
            banks,
            bank_bytes,
            buffering,
            reads: 0,
            writes: 0,
        }
    }

    /// Memory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity of one buffer copy (bytes).
    pub fn buffer_bytes(&self) -> usize {
        self.banks * self.bank_bytes
    }

    /// Total capacity across buffer copies (bytes).
    pub fn total_bytes(&self) -> usize {
        self.buffer_bytes() * self.buffering.copies()
    }

    /// Whether one tile of `bytes` fits a single buffer copy — i.e. its
    /// [`Self::capacity_fraction`] reaches 1.0.
    pub fn tile_fits(&self, bytes: usize) -> bool {
        self.capacity_fraction(bytes) >= 1.0
    }

    /// Fraction of a `working_set_bytes` object one buffer copy can hold —
    /// the same byte-proportional partial-residency rule the GSC model uses
    /// ([`crate::residency::partial_residency`]); tiles larger than a buffer
    /// stream the remainder rather than refusing outright.
    pub fn capacity_fraction(&self, working_set_bytes: usize) -> f64 {
        crate::residency::partial_residency(self.buffer_bytes() as f64, working_set_bytes as f64)
    }

    /// Largest tile rows that fit given `bytes_per_row` (per-bank row
    /// granularity: one row per bank).
    pub fn max_rows(&self, bytes_per_row: usize) -> usize {
        if bytes_per_row == 0 {
            return self.banks;
        }
        self.banks.min(self.buffer_bytes() / bytes_per_row)
    }

    /// Records a read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.reads += bytes;
    }

    /// Records a write of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.writes += bytes;
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.reads
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exion_wmem_capacity() {
        // 16 banks × 12 kB, triple-buffered = 576 kB total, 192 kB per copy.
        let m = BankedMemory::new("WMEM", 16, 12288, Buffering::Triple);
        assert_eq!(m.buffer_bytes(), 192 * 1024);
        assert_eq!(m.total_bytes(), 576 * 1024);
    }

    #[test]
    fn tile_fit_checks() {
        let m = BankedMemory::new("IMEM", 16, 1536, Buffering::Double);
        assert!(m.tile_fits(24 * 1024));
        assert!(!m.tile_fits(24 * 1024 + 1));
    }

    #[test]
    fn capacity_fraction_is_partial_not_binary() {
        let m = BankedMemory::new("IMEM", 16, 1536, Buffering::Double);
        assert_eq!(m.capacity_fraction(12 * 1024), 1.0);
        assert_eq!(m.capacity_fraction(48 * 1024), 0.5);
        assert_eq!(m.capacity_fraction(0), 1.0);
    }

    #[test]
    fn max_rows_bounded_by_banks() {
        let m = BankedMemory::new("IMEM", 16, 1536, Buffering::Double);
        assert_eq!(m.max_rows(10), 16); // plenty of space, bank-limited
        assert_eq!(m.max_rows(4096), 6); // 24576 / 4096
    }

    #[test]
    fn access_accounting() {
        let mut m = BankedMemory::new("OMEM", 16, 1536, Buffering::Double);
        m.record_read(100);
        m.record_write(50);
        m.record_read(10);
        assert_eq!(m.bytes_read(), 110);
        assert_eq!(m.bytes_written(), 50);
    }

    #[test]
    fn buffering_copies() {
        assert_eq!(Buffering::Single.copies(), 1);
        assert_eq!(Buffering::Double.copies(), 2);
        assert_eq!(Buffering::Triple.copies(), 3);
    }
}
