//! The configurable SIMD engine (paper Fig. 10): special functions at
//! accurate precision.
//!
//! "The DSC also includes a configurable SIMD engine (CFSE) with operand
//! memories for accurate computation of special functions such as layer
//! normalization, Softmax, non-linear functions, and residual addition. We
//! design the arithmetic units (ALUs) in CFSE to be configurable, either
//! one-way 32-bit or two-way 16-bit for double throughput."

use serde::{Deserialize, Serialize};

use crate::config::DscGeometry;

/// Special functions the CFSE executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialFunc {
    /// Row softmax (max-reduce, exp + sum-reduce, divide).
    Softmax,
    /// LayerNorm (mean, variance, normalize+affine).
    LayerNorm,
    /// GELU / GEGLU pointwise.
    Gelu,
    /// Residual addition.
    Residual,
    /// Quantize / dequantize scale pass.
    Quantize,
}

impl SpecialFunc {
    /// Element passes the function needs.
    pub fn passes(&self) -> u64 {
        match self {
            SpecialFunc::Softmax | SpecialFunc::LayerNorm => 3,
            SpecialFunc::Gelu | SpecialFunc::Residual | SpecialFunc::Quantize => 1,
        }
    }
}

/// ALU width mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CfseWidth {
    /// One-way 32-bit.
    OneWay32,
    /// Two-way 16-bit (double throughput).
    TwoWay16,
}

impl CfseWidth {
    /// Elements processed per ALU per cycle.
    pub fn throughput(&self) -> u64 {
        match self {
            CfseWidth::OneWay32 => 1,
            CfseWidth::TwoWay16 => 2,
        }
    }
}

/// CFSE cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfseModel {
    geometry: DscGeometry,
}

impl CfseModel {
    /// Creates a model with `geometry.cfse_lanes` ALUs.
    pub fn new(geometry: DscGeometry) -> Self {
        Self { geometry }
    }

    /// Cycles to run `func` over `elements` values at `width`.
    pub fn cycles(&self, func: SpecialFunc, elements: u64, width: CfseWidth) -> u64 {
        let per_cycle = self.geometry.cfse_lanes as u64 * width.throughput();
        func.passes() * elements.div_ceil(per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CfseModel {
        CfseModel::new(DscGeometry::exion())
    }

    #[test]
    fn softmax_needs_three_passes() {
        let m = model();
        // 16 lanes × 2-way = 32 elements/cycle; 320 elements → 10 cycles/pass.
        assert_eq!(m.cycles(SpecialFunc::Softmax, 320, CfseWidth::TwoWay16), 30);
    }

    #[test]
    fn two_way_doubles_throughput() {
        let m = model();
        let one = m.cycles(SpecialFunc::Gelu, 1024, CfseWidth::OneWay32);
        let two = m.cycles(SpecialFunc::Gelu, 1024, CfseWidth::TwoWay16);
        assert_eq!(one, 2 * two);
    }

    #[test]
    fn residual_is_single_pass() {
        assert_eq!(SpecialFunc::Residual.passes(), 1);
        assert_eq!(SpecialFunc::LayerNorm.passes(), 3);
    }

    #[test]
    fn zero_elements_zero_cycles() {
        assert_eq!(
            model().cycles(SpecialFunc::Softmax, 0, CfseWidth::TwoWay16),
            0
        );
    }
}
