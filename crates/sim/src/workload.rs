//! Workload descriptors: what one diffusion iteration asks of the DSC.
//!
//! The simulator consumes per-layer descriptors (shapes plus
//! sparsity/compaction summaries), exactly the information the real
//! accelerator's scheduler has. [`SparsityProfile`] carries those summaries —
//! either from functional measurements (`exion-model` runs through
//! `exion-core`'s ConMerge) or from the closed-form tile model.

use exion_model::config::{NetworkType, ScaleParams};
use serde::{Deserialize, Serialize};

use crate::cfse::{CfseWidth, SpecialFunc};

/// Sparsity and compaction summary of one model under one ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityProfile {
    /// First-FFN-layer output sparsity at sparse iterations (FFN-Reuse).
    pub inter_sparsity: f64,
    /// Remaining block fraction of FFN-1 outputs after ConMerge.
    pub ffn_block_frac: f64,
    /// Occupied-slot fraction within executed FFN blocks (clock gating).
    pub ffn_utilization: f64,
    /// Fraction of FFN-1 weight columns fetched (post-condensing).
    pub ffn_weight_frac: f64,
    /// Attention-score output sparsity (eager prediction).
    pub intra_sparsity: f64,
    /// Remaining block fraction of attention scores after ConMerge.
    pub attn_block_frac: f64,
    /// Occupied-slot fraction within executed attention blocks.
    pub attn_utilization: f64,
    /// Fraction of Q-projection rows skipped (one-hot rows).
    pub q_skip: f64,
    /// Fraction of K/V-projection columns skipped (unused tokens).
    pub kv_skip: f64,
}

impl SparsityProfile {
    /// A dense profile (no sparsity anywhere) — the `_Base` ablation.
    pub fn dense() -> Self {
        Self {
            inter_sparsity: 0.0,
            ffn_block_frac: 1.0,
            ffn_utilization: 1.0,
            ffn_weight_frac: 1.0,
            intra_sparsity: 0.0,
            attn_block_frac: 1.0,
            attn_utilization: 1.0,
            q_skip: 0.0,
            kv_skip: 0.0,
        }
    }

    /// Closed-form tile model: for a random bitmask of sparsity `s` over
    /// `h`-row tiles, a tile-column survives condensing with probability
    /// `1 − s^h`; merging packs up to three source blocks per output block
    /// and is additionally bounded by slot occupancy at a finite fill
    /// efficiency. Used when functional measurements are not available.
    ///
    /// # Panics
    ///
    /// Panics if sparsities are outside `[0, 1]`.
    // One machine-code instance only: `powi`'s expansion is not pinned by
    // IEEE semantics, so separately inlined copies of this function can
    // disagree in the last ULP — and bit-identical profiles across call
    // sites are load-bearing (memoized pricing, fingerprint parity tests).
    #[inline(never)]
    pub fn analytic(inter_sparsity: f64, intra_sparsity: f64, tile_height: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&inter_sparsity),
            "inter sparsity range"
        );
        assert!(
            (0.0..=1.0).contains(&intra_sparsity),
            "intra sparsity range"
        );
        const FILL_EFFICIENCY: f64 = 0.75;
        let block_frac = |s: f64| -> f64 {
            if s == 0.0 {
                return 1.0;
            }
            let surviving = 1.0 - s.powi(tile_height as i32);
            (surviving / 3.0).max((1.0 - s) / FILL_EFFICIENCY).min(1.0)
        };
        let utilization = |s: f64, bf: f64| ((1.0 - s) / bf).clamp(0.05, 1.0);
        let ffn_bf = block_frac(inter_sparsity);
        let attn_bf = block_frac(intra_sparsity);
        Self {
            inter_sparsity,
            ffn_block_frac: ffn_bf,
            ffn_utilization: utilization(inter_sparsity, ffn_bf),
            ffn_weight_frac: (1.0 - inter_sparsity.powi(tile_height as i32)).min(1.0),
            intra_sparsity,
            attn_block_frac: attn_bf,
            attn_utilization: utilization(intra_sparsity, attn_bf),
            // Paper averages: 26% of Q and 22% of K/V projections skipped;
            // the skip opportunity scales with how aggressive the top-k is.
            q_skip: (0.30 * intra_sparsity).min(0.9),
            kv_skip: (0.25 * intra_sparsity).min(0.9),
        }
    }
}

/// One MMUL's descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmulDesc {
    /// Output rows.
    pub m: u64,
    /// Inner dimension.
    pub k: u64,
    /// Output columns.
    pub n: u64,
    /// Remaining block fraction vs dense (ConMerge outcome; 1.0 = dense).
    pub block_frac: f64,
    /// Occupied-slot fraction within executed blocks (clock gating).
    pub utilization: f64,
    /// Fraction of weight bytes fetched from DRAM (condensing saves fetches).
    pub weight_frac: f64,
    /// Effective inner-dimension fraction (sparse-hidden FFN-2, pruned-key
    /// attention·V).
    pub k_frac: f64,
    /// Whether weights stream from DRAM (false: operand lives on chip).
    pub weights_from_dram: bool,
}

impl MmulDesc {
    /// A dense MMUL with DRAM-resident weights.
    pub fn dense(m: u64, k: u64, n: u64) -> Self {
        Self {
            m,
            k,
            n,
            block_frac: 1.0,
            utilization: 1.0,
            weight_frac: 1.0,
            k_frac: 1.0,
            weights_from_dram: true,
        }
    }

    /// A dense MMUL whose second operand is on-chip (attention score / A·V).
    pub fn dense_onchip(m: u64, k: u64, n: u64) -> Self {
        Self {
            weights_from_dram: false,
            ..Self::dense(m, k, n)
        }
    }

    /// Effective inner dimension.
    pub fn k_eff(&self) -> u64 {
        ((self.k as f64 * self.k_frac).ceil() as u64).max(1)
    }

    /// Weight bytes fetched at `bytes_per_operand`.
    pub fn weight_bytes(&self, bytes_per_operand: f64) -> u64 {
        if !self.weights_from_dram {
            return 0;
        }
        (self.k as f64 * self.n as f64 * self.weight_frac * bytes_per_operand) as u64
    }
}

/// One unit of DSC work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DscOp {
    /// An MMUL on the SDUE.
    Mmul(MmulDesc),
    /// A special function on the CFSE.
    Special {
        /// Function kind.
        func: SpecialFunc,
        /// Element count.
        elements: u64,
        /// ALU width mode.
        width: CfseWidth,
    },
    /// An attention prediction on the EPRE.
    EpPredict {
        /// Query/key tokens.
        tokens: u64,
        /// Model width.
        d_model: u64,
        /// Heads.
        heads: u64,
    },
    /// ConMerge vector generation on the CAU.
    CauGenerate {
        /// Columns per row-tile presented to the CAU.
        cols: u64,
        /// Fraction surviving per-tile condensing.
        surviving_frac: f64,
        /// Number of row-tiles.
        tiles: u64,
    },
}

/// The op list of one diffusion iteration plus its dense-equivalent MAC
/// count (the numerator of effective TOPS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationPlan {
    /// Ops in schedule order.
    pub ops: Vec<DscOp>,
    /// MACs a dense execution of this iteration performs.
    pub dense_equivalent_macs: u64,
}

/// ResBlock passes one denoising iteration of a Type-2 (UNetRes) model
/// executes — the unit pipeline-parallel stage cuts partition.
pub const RESBLOCKS_PER_ITERATION: usize = 2;

/// One shard's slice of a partitioned iteration: a tensor-parallel rank
/// (column/row splits of every projection, whole heads per rank) and/or a
/// pipeline-parallel stage (a contiguous transformer-block range plus a
/// ResBlock share). [`ShardSpec::full`] reproduces the unpartitioned plan
/// bit-identically, so [`build_iteration`] is the degenerate case of
/// [`build_iteration_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Tensor-parallel ways (1 = unsplit).
    pub tp_ways: u32,
    /// This shard's tensor-parallel rank (`< tp_ways`).
    pub tp_rank: u32,
    /// First transformer block this shard executes.
    pub block_start: usize,
    /// One past the last transformer block this shard executes.
    pub block_end: usize,
    /// First ResBlock pass this shard executes (UNetRes models only).
    pub resblock_start: usize,
    /// One past the last ResBlock pass this shard executes.
    pub resblock_end: usize,
}

impl ShardSpec {
    /// The whole, unpartitioned iteration.
    pub fn full(params: &ScaleParams) -> Self {
        Self {
            tp_ways: 1,
            tp_rank: 0,
            block_start: 0,
            block_end: params.blocks,
            resblock_start: 0,
            resblock_end: RESBLOCKS_PER_ITERATION,
        }
    }

    /// Rank `rank` of a `ways`-way tensor-parallel split (all blocks, split
    /// widths).
    pub fn tensor(params: &ScaleParams, ways: u32, rank: u32) -> Self {
        Self {
            tp_ways: ways.max(1),
            tp_rank: rank,
            ..Self::full(params)
        }
    }

    /// Stage `stage` of a `stages`-deep pipeline-parallel split: a
    /// cumulative contiguous block range (so stage ranges partition the
    /// blocks exactly) and the matching ResBlock share.
    pub fn pipeline(params: &ScaleParams, stages: u32, stage: u32) -> Self {
        let s = stages.max(1) as usize;
        let i = (stage as usize).min(s - 1);
        Self {
            tp_ways: 1,
            tp_rank: 0,
            block_start: params.blocks * i / s,
            block_end: params.blocks * (i + 1) / s,
            resblock_start: RESBLOCKS_PER_ITERATION * i / s,
            resblock_end: RESBLOCKS_PER_ITERATION * (i + 1) / s,
        }
    }
}

/// Flags selecting which optimizations are active for an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationKindFlags {
    /// FFN-Reuse enabled and this is a *sparse* iteration.
    pub ffn_sparse: bool,
    /// FFN-Reuse enabled and this is a *dense* iteration (CAU bitmask
    /// generation runs).
    pub ffn_dense_with_cau: bool,
    /// Eager prediction enabled.
    pub ep: bool,
}

/// Builds the op list of one diffusion iteration at the given scale.
///
/// `network` adds the unoptimized ResBlock MMULs for Type-2 models; UNet
/// topologies run their transformer blocks at half the token count
/// (downsampled), with ResBlocks at full count.
pub fn build_iteration(
    params: &ScaleParams,
    network: NetworkType,
    geglu: bool,
    flags: IterationKindFlags,
    profile: &SparsityProfile,
    batch: u64,
) -> IterationPlan {
    build_iteration_shard(
        params,
        network,
        geglu,
        flags,
        profile,
        batch,
        &ShardSpec::full(params),
    )
}

/// Builds the op list `shard` executes of one diffusion iteration.
///
/// Tensor-parallel ranks follow the Megatron convention: QKV and FFN-1 are
/// column-split, output projection and FFN-2 are row-split, whole attention
/// heads go to one rank, and LayerNorm/residual math is replicated. Widths
/// are partitioned with a cumulative integer split, so the ranks' slices
/// cover every column/head exactly once. Pipeline stages execute only their
/// block (and ResBlock) range. Collective traffic (TP all-reduces, PP
/// activation hand-offs) is *not* in the plan — it crosses the interconnect,
/// not the DSC engines — and is priced by
/// [`crate::partition::PartitionPlan`].
pub fn build_iteration_shard(
    params: &ScaleParams,
    network: NetworkType,
    geglu: bool,
    flags: IterationKindFlags,
    profile: &SparsityProfile,
    batch: u64,
    shard: &ShardSpec,
) -> IterationPlan {
    let mut ops = Vec::new();
    // Attention is per-sample (batch keeps score matrices m × m); linear
    // layers see batch × tokens rows.
    let m = match network {
        NetworkType::TransformerOnly => params.tokens as u64,
        _ => (params.tokens as u64 / 2).max(1),
    };
    let m_lin = m * batch;
    let full_tokens = params.tokens as u64 * batch;
    let d = params.d_model as u64;
    let d_ff = params.d_ff as u64;
    let hidden = if geglu { d_ff / 2 } else { d_ff };
    let heads = params.heads as u64;
    let d_head = (d / heads).max(1);

    // Cumulative integer split: rank `r` of `ways` owns
    // `dim·(r+1)/ways − dim·r/ways` columns, so the ranks partition `dim`
    // exactly (no double-counted or dropped columns for any dim).
    let ways = shard.tp_ways.max(1) as u64;
    let rank = (shard.tp_rank as u64).min(ways - 1);
    let share = |dim: u64| dim * (rank + 1) / ways - dim * rank / ways;
    let heads_here = share(heads);
    let d_cols = share(d);
    let d_ff_cols = share(d_ff);
    let hidden_cols = share(hidden);

    let mut dense_macs = 0u64;

    // ResBlocks (Type 2 only): kernel-3 double conv, column-split under TP
    // and range-assigned under PP.
    if network == NetworkType::UNetRes {
        for _ in shard.resblock_start..shard.resblock_end.min(RESBLOCKS_PER_ITERATION) {
            if d_cols == 0 {
                continue;
            }
            for _ in 0..6 {
                ops.push(DscOp::Mmul(MmulDesc::dense(full_tokens, d, d_cols)));
            }
            ops.push(DscOp::Special {
                func: SpecialFunc::Gelu,
                elements: full_tokens * d_cols,
                width: CfseWidth::TwoWay16,
            });
            dense_macs += 6 * full_tokens * d * d_cols;
        }
    }

    for _ in shard.block_start..shard.block_end.min(params.blocks) {
        // Pre-attention LayerNorm.
        ops.push(DscOp::Special {
            func: SpecialFunc::LayerNorm,
            elements: m_lin * d,
            width: CfseWidth::OneWay32,
        });

        // EPRE prediction, one pass per sample (pipelined under the SDUE by
        // the DSC timeline); each TP rank predicts for its own heads.
        if flags.ep && heads_here > 0 {
            for _ in 0..batch {
                ops.push(DscOp::EpPredict {
                    tokens: m,
                    d_model: d,
                    heads: heads_here,
                });
            }
        }
        let (q_skip, kv_skip, intra, attn_bf, attn_util) = if flags.ep {
            (
                profile.q_skip,
                profile.kv_skip,
                profile.intra_sparsity,
                profile.attn_block_frac,
                profile.attn_utilization,
            )
        } else {
            (0.0, 0.0, 0.0, 1.0, 1.0)
        };

        // QKV (column-split under TP) + output projection over all batch
        // rows.
        let m_q = ((m_lin as f64 * (1.0 - q_skip)).ceil() as u64).max(1);
        let m_kv = ((m_lin as f64 * (1.0 - kv_skip)).ceil() as u64).max(1);
        if d_cols > 0 {
            ops.push(DscOp::Mmul(MmulDesc::dense(m_q, d, d_cols)));
            ops.push(DscOp::Mmul(MmulDesc::dense(m_kv, d, d_cols)));
            ops.push(DscOp::Mmul(MmulDesc::dense(m_kv, d, d_cols)));
            dense_macs += 3 * m_lin * d * d_cols;
        }

        // Per-sample, per-head attention score and probability·V (whole
        // heads per TP rank).
        for _ in 0..batch {
            for _ in 0..heads_here {
                ops.push(DscOp::Mmul(MmulDesc {
                    block_frac: attn_bf,
                    utilization: attn_util,
                    ..MmulDesc::dense_onchip(m, d_head, m)
                }));
                ops.push(DscOp::Special {
                    func: SpecialFunc::Softmax,
                    elements: ((m * m) as f64 * (1.0 - intra)).ceil() as u64,
                    width: CfseWidth::OneWay32,
                });
                ops.push(DscOp::Mmul(MmulDesc {
                    k_frac: 1.0 - intra,
                    ..MmulDesc::dense_onchip(m, m, d_head)
                }));
            }
        }
        dense_macs += 2 * batch * m * m * d_head * heads_here;

        // Output projection (row-split under TP) + residual.
        if d_cols > 0 {
            ops.push(DscOp::Mmul(MmulDesc::dense(m_lin, d_cols, d)));
            dense_macs += m_lin * d_cols * d;
        }
        ops.push(DscOp::Special {
            func: SpecialFunc::Residual,
            elements: m_lin * d,
            width: CfseWidth::TwoWay16,
        });

        // Pre-FFN LayerNorm.
        ops.push(DscOp::Special {
            func: SpecialFunc::LayerNorm,
            elements: m_lin * d,
            width: CfseWidth::OneWay32,
        });

        // FFN pair: FFN-1 column-split, FFN-2 row-split under TP.
        if flags.ffn_sparse {
            let s = profile.inter_sparsity;
            if d_ff_cols > 0 {
                ops.push(DscOp::Mmul(MmulDesc {
                    block_frac: profile.ffn_block_frac,
                    utilization: profile.ffn_utilization,
                    weight_frac: profile.ffn_weight_frac,
                    ..MmulDesc::dense(m_lin, d, d_ff_cols)
                }));
                ops.push(DscOp::Special {
                    func: SpecialFunc::Gelu,
                    elements: ((m_lin * d_ff_cols) as f64 * (1.0 - s)).ceil() as u64,
                    width: CfseWidth::TwoWay16,
                });
            }
            if hidden_cols > 0 {
                ops.push(DscOp::Mmul(MmulDesc {
                    k_frac: 1.0 - s,
                    weight_frac: (1.0 - s).min(1.0),
                    ..MmulDesc::dense(m_lin, hidden_cols, d)
                }));
            }
        } else {
            if d_ff_cols > 0 {
                ops.push(DscOp::Mmul(MmulDesc::dense(m_lin, d, d_ff_cols)));
                ops.push(DscOp::Special {
                    func: SpecialFunc::Gelu,
                    elements: m_lin * d_ff_cols,
                    width: CfseWidth::TwoWay16,
                });
            }
            if flags.ffn_dense_with_cau && hidden_cols > 0 {
                // Threshold compare + bitmask generation, then CVG.
                ops.push(DscOp::Special {
                    func: SpecialFunc::Quantize,
                    elements: m_lin * hidden_cols,
                    width: CfseWidth::TwoWay16,
                });
                ops.push(DscOp::CauGenerate {
                    cols: hidden_cols,
                    surviving_frac: profile.ffn_weight_frac,
                    tiles: m_lin.div_ceil(16),
                });
            }
            if hidden_cols > 0 {
                ops.push(DscOp::Mmul(MmulDesc::dense(m_lin, hidden_cols, d)));
            }
        }
        dense_macs += m_lin * d_ff_cols * d + m_lin * hidden_cols * d;
        ops.push(DscOp::Special {
            func: SpecialFunc::Residual,
            elements: m_lin * d,
            width: CfseWidth::TwoWay16,
        });
    }

    IterationPlan {
        ops,
        dense_equivalent_macs: dense_macs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::{ModelConfig, ModelKind};

    fn dit_params() -> ScaleParams {
        ModelConfig::for_kind(ModelKind::Dit).paper
    }

    #[test]
    fn dense_profile_is_all_ones() {
        let p = SparsityProfile::dense();
        assert_eq!(p.ffn_block_frac, 1.0);
        assert_eq!(p.intra_sparsity, 0.0);
    }

    #[test]
    fn analytic_profile_matches_tile_model() {
        // 95% sparsity over 16-row tiles: ~56% of tile-columns survive,
        // merging compacts toward max(0.56/3, 0.05/0.75) ≈ 18.7%.
        let p = SparsityProfile::analytic(0.95, 0.0, 16);
        assert!(
            (p.ffn_weight_frac - 0.5599).abs() < 0.01,
            "{}",
            p.ffn_weight_frac
        );
        assert!(
            (p.ffn_block_frac - 0.187).abs() < 0.01,
            "{}",
            p.ffn_block_frac
        );
        assert!(p.ffn_utilization > 0.2);
        // Dense input leaves everything dense.
        let d = SparsityProfile::analytic(0.0, 0.0, 16);
        assert_eq!(d.ffn_block_frac, 1.0);
    }

    #[test]
    fn iteration_plan_contains_expected_ops() {
        let flags = IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        };
        let plan = build_iteration(
            &dit_params(),
            NetworkType::TransformerOnly,
            false,
            flags,
            &SparsityProfile::dense(),
            1,
        );
        let mmuls = plan
            .ops
            .iter()
            .filter(|o| matches!(o, DscOp::Mmul(_)))
            .count();
        // Per block: 3 qkv + 2·heads attention + 1 output + 2 ffn.
        let p = dit_params();
        assert_eq!(mmuls, p.blocks * (3 + 2 * p.heads + 1 + 2));
        assert!(plan.dense_equivalent_macs > 0);
    }

    #[test]
    fn sparse_iteration_shrinks_work_not_dense_equivalent() {
        let p = dit_params();
        let profile = SparsityProfile::analytic(0.95, 0.95, 16);
        let dense_flags = IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        };
        let sparse_flags = IterationKindFlags {
            ffn_sparse: true,
            ffn_dense_with_cau: false,
            ep: true,
        };
        let dense = build_iteration(
            &p,
            NetworkType::TransformerOnly,
            false,
            dense_flags,
            &SparsityProfile::dense(),
            1,
        );
        let sparse = build_iteration(
            &p,
            NetworkType::TransformerOnly,
            false,
            sparse_flags,
            &profile,
            1,
        );
        assert_eq!(dense.dense_equivalent_macs, sparse.dense_equivalent_macs);
        assert!(sparse.ops.len() > dense.ops.len()); // EP ops added
    }

    #[test]
    fn unet_res_adds_resblock_mmuls() {
        let config = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let flags = IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        };
        let plan = build_iteration(
            &config.paper,
            config.network,
            config.geglu,
            flags,
            &SparsityProfile::dense(),
            1,
        );
        let dit_plan = build_iteration(
            &config.paper,
            NetworkType::TransformerOnly,
            config.geglu,
            flags,
            &SparsityProfile::dense(),
            1,
        );
        // Transformer blocks run at half tokens (downsampled) but ResBlocks
        // add full-resolution conv MMULs.
        assert!(plan.dense_equivalent_macs > dit_plan.dense_equivalent_macs / 3);
        assert!(plan.ops.len() > dit_plan.ops.len());
    }

    #[test]
    fn batch_scales_rows() {
        let flags = IterationKindFlags {
            ffn_sparse: false,
            ffn_dense_with_cau: false,
            ep: false,
        };
        let b1 = build_iteration(
            &dit_params(),
            NetworkType::TransformerOnly,
            false,
            flags,
            &SparsityProfile::dense(),
            1,
        );
        let b8 = build_iteration(
            &dit_params(),
            NetworkType::TransformerOnly,
            false,
            flags,
            &SparsityProfile::dense(),
            8,
        );
        assert!(b8.dense_equivalent_macs > 7 * b1.dense_equivalent_macs);
    }

    #[test]
    fn mmul_desc_helpers() {
        let d = MmulDesc::dense(10, 100, 20);
        assert_eq!(d.k_eff(), 100);
        assert_eq!(d.weight_bytes(1.5), 3000);
        let on_chip = MmulDesc::dense_onchip(10, 100, 20);
        assert_eq!(on_chip.weight_bytes(1.5), 0);
        let sparse = MmulDesc {
            k_frac: 0.25,
            ..MmulDesc::dense(10, 100, 20)
        };
        assert_eq!(sparse.k_eff(), 25);
    }
}
