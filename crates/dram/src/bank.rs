//! Per-bank row-buffer state machines.

use serde::{Deserialize, Serialize};

use crate::timing::DramTiming;

/// The row-buffer state of one DRAM bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest time (ns) the bank can accept a new column command.
    pub ready_ns: f64,
}

/// Outcome of issuing one burst to a bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankAccess {
    /// Time (ns) the column access was issued.
    pub issue_ns: f64,
    /// Time (ns) data is available at the bank's I/O (before bus transfer).
    pub data_ready_ns: f64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

impl BankState {
    /// Issues one burst for `row` at `now_ns`, updating the open row.
    ///
    /// A hit pays CAS only; a miss pays precharge (if another row was open)
    /// plus activate plus CAS.
    pub fn access(&mut self, row: u64, now_ns: f64, t: &DramTiming) -> BankAccess {
        let mut issue = now_ns.max(self.ready_ns);
        let row_hit = self.open_row == Some(row);
        if !row_hit {
            if self.open_row.is_some() {
                issue += t.t_rp_ns;
            }
            issue += t.t_rcd_ns;
            self.open_row = Some(row);
        }
        let data_ready = issue + t.t_cas_ns;
        // The bank can pipeline subsequent column commands to the same row
        // once the current command is issued.
        self.ready_ns = issue + t.burst_ns();
        BankAccess {
            issue_ns: issue,
            data_ready_ns: data_ready,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss_without_precharge() {
        let t = DramTiming::lpddr5();
        let mut b = BankState::default();
        let a = b.access(3, 0.0, &t);
        assert!(!a.row_hit);
        assert!((a.issue_ns - t.t_rcd_ns).abs() < 1e-9);
        assert_eq!(b.open_row, Some(3));
    }

    #[test]
    fn second_access_same_row_hits() {
        let t = DramTiming::lpddr5();
        let mut b = BankState::default();
        let _ = b.access(3, 0.0, &t);
        let a = b.access(3, 100.0, &t);
        assert!(a.row_hit);
        assert!((a.data_ready_ns - (100.0 + t.t_cas_ns)).abs() < 1e-9);
    }

    #[test]
    fn row_switch_pays_precharge_and_activate() {
        let t = DramTiming::lpddr5();
        let mut b = BankState::default();
        let _ = b.access(3, 0.0, &t);
        let a = b.access(4, 100.0, &t);
        assert!(!a.row_hit);
        assert!((a.issue_ns - (100.0 + t.t_rp_ns + t.t_rcd_ns)).abs() < 1e-9);
        assert_eq!(b.open_row, Some(4));
    }

    #[test]
    fn bank_backpressure_applies() {
        let t = DramTiming::lpddr5();
        let mut b = BankState::default();
        let a0 = b.access(1, 0.0, &t);
        // Immediately issuing again queues behind the bank's ready time.
        let a1 = b.access(1, 0.0, &t);
        assert!(a1.issue_ns >= a0.issue_ns + t.burst_ns() - 1e-9);
    }
}
