//! # exion-dram
//!
//! DRAM timing and energy model — the reproduction's stand-in for Ramulator
//! (Kim et al., IEEE CAL 2015), which the paper integrates "to model DRAM
//! latency".
//!
//! The model is request-level: transfers split into bursts, bursts map to
//! channels/banks/rows, banks keep row-buffer state (hits cost CAS only,
//! misses pay precharge + activate), and each channel's data bus serializes
//! burst payloads, so sequential streams approach the configured peak
//! bandwidth while scattered accesses degrade realistically.
//!
//! * [`timing`] — LPDDR5 (edge, Table II: 51–68 GB/s class) and GDDR6
//!   (server, 819–960 GB/s class) parameter sets,
//! * [`bank`] — per-bank row-buffer state machines,
//! * [`controller`] — the multi-channel controller with statistics and a
//!   per-access energy model (activation energy + pJ/bit + background power).
//!
//! # Examples
//!
//! ```
//! use exion_dram::{controller::Dram, timing::DramTiming};
//!
//! let mut dram = Dram::for_bandwidth(DramTiming::lpddr5(), 51.0);
//! let done_ns = dram.transfer(0, 4096, false, 0.0);
//! assert!(done_ns > 0.0);
//! assert!(dram.stats().bytes_read == 4096);
//! ```

pub mod bank;
pub mod controller;
pub mod timing;

pub use controller::{Dram, DramStats};
pub use timing::DramTiming;
