//! Multi-channel DRAM controller with statistics and energy accounting.

use serde::{Deserialize, Serialize};

use crate::bank::BankState;
use crate::timing::DramTiming;

/// Access statistics and derived energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
    /// Last completion time seen (ns).
    pub last_completion_ns: f64,
}

impl DramStats {
    /// Row-hit rate in `[0, 1]` (0.0 with no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// One channel: banks plus a serialized data bus.
#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<BankState>,
    bus_free_ns: f64,
}

/// A multi-channel DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    timing: DramTiming,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl Dram {
    /// Creates a device with an explicit channel count.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(timing: DramTiming, channels: usize) -> Self {
        assert!(channels > 0, "at least one channel required");
        Self {
            timing,
            channels: (0..channels)
                .map(|_| Channel {
                    banks: vec![BankState::default(); timing.banks],
                    bus_free_ns: 0.0,
                })
                .collect(),
            stats: DramStats::default(),
        }
    }

    /// Creates a device with enough channels to reach `target_gbps`
    /// aggregate peak bandwidth (Table II: 51, 819, 1935 GB/s).
    ///
    /// # Panics
    ///
    /// Panics if `target_gbps <= 0`.
    pub fn for_bandwidth(timing: DramTiming, target_gbps: f64) -> Self {
        assert!(target_gbps > 0.0, "bandwidth must be positive");
        let channels = (target_gbps / timing.channel_gbps).ceil().max(1.0) as usize;
        Self::new(timing, channels)
    }

    /// The device timing.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Aggregate peak bandwidth (GB/s).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.timing.channel_gbps * self.channels.len() as f64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Clears state and statistics.
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.bus_free_ns = 0.0;
            for b in &mut ch.banks {
                *b = BankState::default();
            }
        }
        self.stats = DramStats::default();
    }

    /// Transfers `[addr, addr + bytes)` starting no earlier than `now_ns`,
    /// returning the completion time (ns). Consecutive bursts interleave
    /// across channels and stream through rows, so large sequential transfers
    /// approach peak bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn transfer(&mut self, addr: u64, bytes: u64, is_write: bool, now_ns: f64) -> f64 {
        assert!(bytes > 0, "empty transfer");
        let t = self.timing;
        let nch = self.channels.len() as u64;
        let bursts_per_row = t.bursts_per_row();
        let first_burst = addr / t.burst_bytes;
        let last_burst = (addr + bytes - 1) / t.burst_bytes;
        let mut completion = now_ns;

        for gb in first_burst..=last_burst {
            let ch_idx = (gb % nch) as usize;
            let col = gb / nch;
            let bank_idx = ((col / bursts_per_row) % t.banks as u64) as usize;
            let row = col / (bursts_per_row * t.banks as u64);

            let ch = &mut self.channels[ch_idx];
            let access = ch.banks[bank_idx].access(row, now_ns, &t);
            let data_start = access.data_ready_ns.max(ch.bus_free_ns);
            let done = data_start + t.burst_ns();
            ch.bus_free_ns = done;
            completion = completion.max(done);

            if access.row_hit {
                self.stats.row_hits += 1;
            } else {
                self.stats.row_misses += 1;
            }
        }

        if is_write {
            self.stats.bytes_written += bytes;
        } else {
            self.stats.bytes_read += bytes;
        }
        self.stats.last_completion_ns = self.stats.last_completion_ns.max(completion);
        completion
    }

    /// Analytic fast path for large sequential streams: O(1) instead of
    /// per-burst simulation. Sequential streams pipeline row activations
    /// behind bus transfers, so the time is first-access latency plus the
    /// bandwidth-limited transfer; statistics are updated with the exact
    /// hit/miss counts a sequential walk would produce.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn stream_transfer(&mut self, bytes: u64, is_write: bool, now_ns: f64) -> f64 {
        assert!(bytes > 0, "empty transfer");
        let t = self.timing;
        let first_access = t.t_rcd_ns + t.t_cas_ns;
        let start = now_ns.max(self.channels[0].bus_free_ns);
        let done = start + first_access + bytes as f64 / self.peak_bandwidth_gbps();
        for ch in &mut self.channels {
            ch.bus_free_ns = ch.bus_free_ns.max(done);
        }
        let bursts = bytes.div_ceil(t.burst_bytes);
        let misses = bytes.div_ceil(t.row_bytes).max(1);
        self.stats.row_misses += misses;
        self.stats.row_hits += bursts.saturating_sub(misses);
        if is_write {
            self.stats.bytes_written += bytes;
        } else {
            self.stats.bytes_read += bytes;
        }
        self.stats.last_completion_ns = self.stats.last_completion_ns.max(done);
        done
    }

    /// Dynamic DRAM energy of all traffic so far (pJ): activations plus
    /// per-bit transfer energy.
    pub fn dynamic_energy_pj(&self) -> f64 {
        let bits = 8.0 * (self.stats.bytes_read + self.stats.bytes_written) as f64;
        self.stats.row_misses as f64 * self.timing.act_energy_pj + bits * self.timing.rw_pj_per_bit
    }

    /// Background energy over `elapsed_ns` across all channels (pJ).
    pub fn background_energy_pj(&self, elapsed_ns: f64) -> f64 {
        // mW · ns = pJ.
        self.timing.background_mw * self.channels.len() as f64 * elapsed_ns
    }

    /// Lower-bound transfer time for `bytes` at peak bandwidth (ns).
    pub fn min_transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.peak_bandwidth_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_bandwidth_picks_channel_count() {
        let d = Dram::for_bandwidth(DramTiming::lpddr5(), 51.0);
        assert_eq!(d.channels(), 4); // 4 × 12.8 = 51.2 GB/s
        let d = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
        assert_eq!(d.channels(), 26);
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let mut d = Dram::for_bandwidth(DramTiming::lpddr5(), 51.0);
        let bytes = 4 << 20; // 4 MiB
        let done = d.transfer(0, bytes, false, 0.0);
        let achieved = bytes as f64 / done; // GB/s (bytes per ns)
        let peak = d.peak_bandwidth_gbps();
        assert!(
            achieved > 0.8 * peak,
            "achieved {achieved:.1} GB/s of peak {peak:.1}"
        );
        assert!(d.stats().hit_rate() > 0.95);
    }

    #[test]
    fn scattered_access_is_slower_than_sequential() {
        let mut seq = Dram::new(DramTiming::lpddr5(), 1);
        let seq_done = seq.transfer(0, 32 * 1024, false, 0.0);

        let mut scat = Dram::new(DramTiming::lpddr5(), 1);
        let mut scat_done = 0.0f64;
        // 1024 reads of one burst, each in a different row of the same bank.
        let t = DramTiming::lpddr5();
        let row_stride = t.row_bytes * t.banks as u64;
        for i in 0..1024u64 {
            scat_done = scat_done.max(scat.transfer(i * row_stride, 32, false, 0.0));
        }
        assert!(
            scat_done > 3.0 * seq_done,
            "scattered {scat_done:.0} ns vs sequential {seq_done:.0} ns"
        );
        assert!(scat.stats().hit_rate() < 0.05);
    }

    #[test]
    fn transfer_is_deterministic() {
        let mut a = Dram::new(DramTiming::gddr6(), 2);
        let mut b = Dram::new(DramTiming::gddr6(), 2);
        assert_eq!(
            a.transfer(128, 8192, true, 5.0),
            b.transfer(128, 8192, true, 5.0)
        );
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut d = Dram::new(DramTiming::lpddr5(), 2);
        let _ = d.transfer(0, 1000, false, 0.0);
        let _ = d.transfer(4096, 500, true, 0.0);
        assert_eq!(d.stats().bytes_read, 1000);
        assert_eq!(d.stats().bytes_written, 500);
        d.reset();
        assert_eq!(d.stats().bytes_read, 0);
    }

    #[test]
    fn energy_grows_with_traffic_and_misses() {
        let mut d = Dram::new(DramTiming::lpddr5(), 1);
        let _ = d.transfer(0, 1024, false, 0.0);
        let e1 = d.dynamic_energy_pj();
        let t = DramTiming::lpddr5();
        let _ = d.transfer(t.row_bytes * t.banks as u64 * 7, 1024, false, 1e6);
        let e2 = d.dynamic_energy_pj();
        assert!(e2 > e1);
        assert!(d.background_energy_pj(1000.0) > 0.0);
    }

    #[test]
    fn min_transfer_matches_peak() {
        let d = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
        let ns = d.min_transfer_ns(832 * 1000);
        assert!((ns - 1000.0).abs() < 10.0); // 832 GB/s ⇒ ~1 µs for 832 kB
    }

    #[test]
    fn stream_transfer_matches_burst_simulation() {
        let bytes = 1 << 20;
        let mut fine = Dram::for_bandwidth(DramTiming::lpddr5(), 51.0);
        let fine_done = fine.transfer(0, bytes, false, 0.0);
        let mut coarse = Dram::for_bandwidth(DramTiming::lpddr5(), 51.0);
        let coarse_done = coarse.stream_transfer(bytes, false, 0.0);
        let ratio = coarse_done / fine_done;
        assert!((0.8..1.25).contains(&ratio), "coarse/fine ratio {ratio}");
        assert_eq!(coarse.stats().bytes_read, bytes);
    }

    #[test]
    fn stream_transfers_serialize_on_the_bus() {
        let mut d = Dram::for_bandwidth(DramTiming::gddr6(), 819.0);
        let first = d.stream_transfer(1 << 20, false, 0.0);
        let second = d.stream_transfer(1 << 20, false, 0.0);
        assert!(second > first);
    }

    #[test]
    #[should_panic(expected = "empty transfer")]
    fn zero_byte_transfer_rejected() {
        let mut d = Dram::new(DramTiming::lpddr5(), 1);
        let _ = d.transfer(0, 0, false, 0.0);
    }
}
