//! DRAM device timing and energy parameter sets.
//!
//! Values are standard datasheet-class numbers for LPDDR5 and GDDR6 devices
//! (the paper cites vendor energy presentations [14], [17] for its power
//! modelling; the per-bit and activation energies here sit in the same
//! ranges).

use serde::{Deserialize, Serialize};

/// Timing/energy parameters of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Peak data bandwidth of one channel (GB/s).
    pub channel_gbps: f64,
    /// CAS latency (ns).
    pub t_cas_ns: f64,
    /// RAS-to-CAS (activate) delay (ns).
    pub t_rcd_ns: f64,
    /// Row precharge time (ns).
    pub t_rp_ns: f64,
    /// Banks per channel.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Burst transfer granularity in bytes.
    pub burst_bytes: u64,
    /// Energy of one row activation (pJ).
    pub act_energy_pj: f64,
    /// Read/write transfer energy (pJ per bit).
    pub rw_pj_per_bit: f64,
    /// Background/standby power per channel (mW).
    pub background_mw: f64,
}

impl DramTiming {
    /// LPDDR5-6400 class channel (x16 at 6.4 Gb/s/pin ⇒ 12.8 GB/s),
    /// the edge configuration's memory (Table II: EXION4 uses 51 GB/s
    /// LPDDR5).
    pub fn lpddr5() -> Self {
        Self {
            channel_gbps: 12.8,
            t_cas_ns: 18.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            banks: 16,
            row_bytes: 2048,
            burst_bytes: 32,
            act_energy_pj: 2000.0,
            rw_pj_per_bit: 4.0,
            background_mw: 40.0,
        }
    }

    /// GDDR6 class channel (x16 at 16 Gb/s/pin ⇒ 32 GB/s), the server
    /// configuration's memory (Table II: EXION24 uses 819 GB/s).
    pub fn gddr6() -> Self {
        Self {
            channel_gbps: 32.0,
            t_cas_ns: 15.0,
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            banks: 16,
            row_bytes: 2048,
            burst_bytes: 32,
            act_energy_pj: 3000.0,
            rw_pj_per_bit: 7.5,
            background_mw: 120.0,
        }
    }

    /// Nanoseconds one burst occupies the channel's data bus.
    pub fn burst_ns(&self) -> f64 {
        self.burst_bytes as f64 / self.channel_gbps
    }

    /// Bursts per row (row-buffer hit streak length for sequential access).
    pub fn bursts_per_row(&self) -> u64 {
        self.row_bytes / self.burst_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for t in [DramTiming::lpddr5(), DramTiming::gddr6()] {
            assert!(t.channel_gbps > 0.0);
            assert!(t.t_cas_ns > 0.0 && t.t_rcd_ns > 0.0 && t.t_rp_ns > 0.0);
            assert!(t.row_bytes % t.burst_bytes == 0);
            assert!(t.banks.is_power_of_two());
        }
    }

    #[test]
    fn gddr6_is_faster_but_hungrier() {
        let lp = DramTiming::lpddr5();
        let g6 = DramTiming::gddr6();
        assert!(g6.channel_gbps > lp.channel_gbps);
        assert!(g6.rw_pj_per_bit > lp.rw_pj_per_bit);
    }

    #[test]
    fn burst_time_matches_bandwidth() {
        let t = DramTiming::lpddr5();
        // 32 B at 12.8 GB/s = 2.5 ns.
        assert!((t.burst_ns() - 2.5).abs() < 1e-9);
        assert_eq!(t.bursts_per_row(), 64);
    }
}
