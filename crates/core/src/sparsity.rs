//! Shared sparsity and operation-count bookkeeping.

use serde::{Deserialize, Serialize};

/// Zero / total element counters with a sparsity accessor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparsityStats {
    /// Number of sparse (skipped / zero) elements.
    pub zero: u64,
    /// Total number of elements.
    pub total: u64,
}

impl SparsityStats {
    /// Creates stats from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if `zero > total`.
    pub fn new(zero: u64, total: u64) -> Self {
        assert!(zero <= total, "zero count {zero} exceeds total {total}");
        Self { zero, total }
    }

    /// Fraction of sparse elements in `[0, 1]`; 0.0 for an empty population.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.zero as f64 / self.total as f64
        }
    }

    /// Merges two populations.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            zero: self.zero + other.zero,
            total: self.total + other.total,
        }
    }
}

/// Multiply-accumulate operation counters: `performed` vs the `dense`
/// baseline, giving the paper's "# of Ops reduction" percentages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// MAC operations actually performed.
    pub performed: u64,
    /// MAC operations a dense execution would have performed.
    pub dense: u64,
}

impl OpCounts {
    /// Creates counters from explicit values.
    pub fn new(performed: u64, dense: u64) -> Self {
        Self { performed, dense }
    }

    /// Fraction of dense work skipped, in `[0, 1]`; 0.0 for an empty baseline.
    pub fn reduction(&self) -> f64 {
        if self.dense == 0 {
            0.0
        } else {
            1.0 - self.performed as f64 / self.dense as f64
        }
    }

    /// Merges two counters.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            performed: self.performed + other.performed,
            dense: self.dense + other.dense,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_fraction() {
        let s = SparsityStats::new(97, 100);
        assert!((s.sparsity() - 0.97).abs() < 1e-12);
        assert_eq!(SparsityStats::default().sparsity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn sparsity_rejects_impossible_counts() {
        let _ = SparsityStats::new(5, 4);
    }

    #[test]
    fn merge_adds_counts() {
        let a = SparsityStats::new(1, 2);
        let b = SparsityStats::new(3, 4);
        let m = a.merge(&b);
        assert_eq!(m, SparsityStats::new(4, 6));
    }

    #[test]
    fn op_reduction() {
        let o = OpCounts::new(25, 100);
        assert!((o.reduction() - 0.75).abs() < 1e-12);
        assert_eq!(OpCounts::default().reduction(), 0.0);
    }

    #[test]
    fn op_merge() {
        let m = OpCounts::new(1, 2).merge(&OpCounts::new(3, 4));
        assert_eq!(m, OpCounts::new(4, 6));
    }
}
