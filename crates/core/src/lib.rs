//! # exion-core
//!
//! The primary contribution of the EXION paper (HPCA 2025), reimplemented in
//! Rust:
//!
//! * [`ffn_reuse`] — the **FFN-Reuse algorithm** (Section III-A): one *dense
//!   iteration* computes the FFN layers fully and derives a threshold bitmask
//!   from the non-linearity output; the following *N sparse iterations* reuse
//!   the below-threshold activations, producing *inter-iteration output
//!   sparsity* of 70–97% in the first FFN layer.
//! * [`ep`] — the **improved Eager Prediction algorithm** (Sections II-B and
//!   IV-D): log-domain arithmetic with two-step leading-one detection predicts
//!   the attention score cheaply; top-k selection and a dominance threshold
//!   then skip most of the real-domain attention computation, producing
//!   *intra-iteration output sparsity*.
//! * [`conmerge`] — the **ConMerge data-compaction mechanism** (Section
//!   III-B): *condensing* removes all-zero output columns and *merging* packs
//!   the surviving sparse columns into dense 16×16 blocks under the hardware's
//!   conflict-vector and triple-buffered-weight constraints, so a plain
//!   broadcast DPU array can exploit unstructured output sparsity.
//! * [`bitmask`] and [`sparsity`] — the shared bit-matrix and statistics
//!   substrate.
//!
//! # Examples
//!
//! ```
//! use exion_core::bitmask::Bitmask2D;
//! use exion_core::conmerge::{CompactionConfig, TileCompactor};
//!
//! // A 16x64 output bitmask with ~90% sparsity compacts to a few blocks.
//! let mask = Bitmask2D::from_fn(16, 64, |r, c| (r * 31 + c * 7) % 10 == 0);
//! let compactor = TileCompactor::new(CompactionConfig::default());
//! let report = compactor.compact_matrix(&mask);
//! assert!(report.remaining_column_fraction() < 1.0);
//! ```

pub mod bitmask;
pub mod conmerge;
pub mod ep;
pub mod ffn_reuse;
pub mod sparsity;

pub use bitmask::Bitmask2D;
pub use ffn_reuse::{FfnReuseConfig, FfnReuseEngine, FfnWeights};
pub use sparsity::{OpCounts, SparsityStats};
