//! A packed 2-D bitmask.
//!
//! Bitmasks are the central bookkeeping structure of EXION: FFN-Reuse emits a
//! bitmask of "recompute" positions from the dense iteration (Fig. 6), the
//! CAU receives per-column 16-bit bitmasks (Fig. 13), and ConMerge's merging
//! operates entirely on bitmask algebra (Fig. 14).

use exion_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` bitmask packed into 64-bit words, row-major.
///
/// Bit convention follows the paper: `1` marks **non-sparse** data (must be
/// computed / kept), `0` marks **sparse** data (skipped / reused).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmask2D {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl Bitmask2D {
    /// Creates an all-zero (all-sparse) bitmask.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Creates an all-one (all-dense) bitmask.
    pub fn ones(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, true);
            }
        }
        m
    }

    /// Builds a bitmask from a predicate over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Builds the FFN-Reuse bitmask from a real matrix: bit = 1 where
    /// `|x| > threshold` (important, recompute every iteration), bit = 0 where
    /// `|x| <= threshold` (reused during sparse iterations).
    pub fn from_threshold(m: &Matrix, threshold: f32) -> Self {
        Self::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)].abs() > threshold)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Reads bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "bitmask index out of bounds"
        );
        let w = self.words[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Writes bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "bitmask index out of bounds"
        );
        let w = &mut self.words[r * self.words_per_row + c / 64];
        if value {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Number of set bits in the whole mask.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_count_ones(&self, r: usize) -> usize {
        assert!(r < self.rows, "row out of bounds");
        self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of set bits in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_count_ones(&self, c: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, c)).count()
    }

    /// Whether column `c` is entirely zero — the *condensing* predicate
    /// (Fig. 8: "if every element in a column are 0, remove column").
    pub fn col_is_zero(&self, c: usize) -> bool {
        self.col_count_ones(c) == 0
    }

    /// Fraction of zero bits (the paper's output-sparsity percentage).
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.count_ones() as f64 / total as f64
    }

    /// Extracts the column mask of column `c` restricted to rows
    /// `[row0, row0+height)` as a packed `u64` (bit `i` = row `row0+i`).
    ///
    /// This is exactly the per-column 16-bit bitmask the CAU receives from the
    /// DPU lanes (Fig. 13), generalized to heights up to 64.
    ///
    /// # Panics
    ///
    /// Panics if `height > 64` or the region exceeds the mask bounds.
    pub fn tile_col_mask(&self, row0: usize, height: usize, c: usize) -> u64 {
        assert!(height <= 64, "tile height above 64 unsupported");
        assert!(
            row0 + height <= self.rows && c < self.cols,
            "tile out of bounds"
        );
        let mut m = 0u64;
        for i in 0..height {
            if self.get(row0 + i, c) {
                m |= 1 << i;
            }
        }
        m
    }

    /// Logical OR with another mask of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "bitmask OR shape mismatch");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }

    /// Logical AND with another mask of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "bitmask AND shape mismatch");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// Iterator over the set-bit coordinates, row-major.
    pub fn iter_ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (0..self.cols).filter_map(move |c| if self.get(r, c) { Some((r, c)) } else { None })
        })
    }
}

impl std::fmt::Debug for Bitmask2D {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Bitmask2D {}x{} ({} ones, sparsity {:.1}%)",
            self.rows,
            self.cols,
            self.count_ones(),
            self.sparsity() * 100.0
        )?;
        for r in 0..self.rows.min(8) {
            let bits: String = (0..self.cols.min(64))
                .map(|c| if self.get(r, c) { '1' } else { '0' })
                .collect();
            writeln!(f, "  {bits}{}", if self.cols > 64 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmask2D::zeros(4, 70);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.sparsity(), 1.0);
        let o = Bitmask2D::ones(4, 70);
        assert_eq!(o.count_ones(), 4 * 70);
        assert_eq!(o.sparsity(), 0.0);
    }

    #[test]
    fn set_get_across_word_boundary() {
        let mut m = Bitmask2D::zeros(2, 130);
        m.set(1, 63, true);
        m.set(1, 64, true);
        m.set(1, 129, true);
        assert!(m.get(1, 63) && m.get(1, 64) && m.get(1, 129));
        assert!(!m.get(0, 63));
        assert_eq!(m.count_ones(), 3);
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn from_threshold_marks_large_values() {
        let mat = Matrix::from_vec(1, 4, vec![0.05, -0.5, 0.2, -0.05]);
        let m = Bitmask2D::from_threshold(&mat, 0.1);
        assert!(!m.get(0, 0));
        assert!(m.get(0, 1));
        assert!(m.get(0, 2));
        assert!(!m.get(0, 3));
    }

    #[test]
    fn row_and_col_counts() {
        let m = Bitmask2D::from_fn(3, 3, |r, c| r == c);
        for i in 0..3 {
            assert_eq!(m.row_count_ones(i), 1);
            assert_eq!(m.col_count_ones(i), 1);
        }
        assert!(!m.col_is_zero(0));
        let z = Bitmask2D::zeros(3, 3);
        assert!(z.col_is_zero(2));
    }

    #[test]
    fn tile_col_mask_packs_rows() {
        let m = Bitmask2D::from_fn(8, 2, |r, _| r % 2 == 0);
        // rows 2..6 of col 0: rows 2 (set), 3, 4 (set), 5 → bits 0 and 2.
        assert_eq!(m.tile_col_mask(2, 4, 0), 0b0101);
    }

    #[test]
    fn or_and() {
        let a = Bitmask2D::from_fn(2, 2, |r, _| r == 0);
        let b = Bitmask2D::from_fn(2, 2, |_, c| c == 0);
        assert_eq!(a.or(&b).count_ones(), 3);
        assert_eq!(a.and(&b).count_ones(), 1);
    }

    #[test]
    fn iter_ones_row_major() {
        let m = Bitmask2D::from_fn(2, 2, |r, c| r == c);
        let ones: Vec<_> = m.iter_ones().collect();
        assert_eq!(ones, vec![(0, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Bitmask2D::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
