//! Log-domain arithmetic for eager prediction (paper Fig. 5(a) and Fig. 15).
//!
//! Integers are approximated by their leading one (LOD) or their two leading
//! ones (TS-LOD). A multiplication then becomes exponent additions producing
//! *one-hot* partial terms (powers of two), which the hardware accumulates
//! with an OR-gate tree instead of full adders. Both the OR-tree behaviour
//! and an exact-adder reference are modelled so the approximation cost is
//! measurable.

use exion_tensor::QuantMatrix;
use serde::{Deserialize, Serialize};

/// Position of the leading one bit of `x` (0 = LSB), or `None` for zero.
///
/// # Examples
///
/// ```
/// use exion_core::ep::lod;
/// assert_eq!(lod(0b1001), Some(3));
/// assert_eq!(lod(1), Some(0));
/// assert_eq!(lod(0), None);
/// ```
pub fn lod(x: u32) -> Option<u32> {
    if x == 0 {
        None
    } else {
        Some(31 - x.leading_zeros())
    }
}

/// Leading-one detection depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LodMode {
    /// Single-step LOD: keep only the leading one (the original EP of FACT).
    Single,
    /// Two-step LOD: "first conducts LOD and then detects an additional bit
    /// after converting the leading-one bit to zero" (Section IV-D). EXION's
    /// accuracy improvement.
    TwoStep,
}

/// How one-hot partial terms are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccumMode {
    /// Exact integer adds everywhere (reference).
    Exact,
    /// The hardware's one-hot adder tree: the (up to four) one-hot terms of
    /// each product are combined with bitwise OR — a repeated exponent is
    /// absorbed instead of carried — then products are summed exactly by the
    /// 16-to-1 Wallace tree.
    OneHotOrTree,
}

/// A sign plus up to two leading-one exponents — the log-domain image of one
/// integer operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogOperand {
    /// Sign: -1, 0, or +1.
    pub sign: i8,
    /// Leading-one exponent, `None` iff the value is zero.
    pub e1: Option<u8>,
    /// Second leading-one exponent (TS-LOD only).
    pub e2: Option<u8>,
}

impl LogOperand {
    /// Approximates an integer in the log domain.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_core::ep::{LodMode, LogOperand};
    /// let a = LogOperand::from_int(5, LodMode::TwoStep);
    /// assert_eq!(a.approx_value(), 5); // 4 + 1
    /// let b = LogOperand::from_int(5, LodMode::Single);
    /// assert_eq!(b.approx_value(), 4);
    /// ```
    pub fn from_int(x: i32, mode: LodMode) -> Self {
        if x == 0 {
            return Self {
                sign: 0,
                e1: None,
                e2: None,
            };
        }
        let sign = if x < 0 { -1 } else { 1 };
        let a = x.unsigned_abs();
        let e1 = lod(a).map(|e| e as u8);
        let e2 = match (mode, e1) {
            (LodMode::TwoStep, Some(e)) => lod(a & !(1u32 << e)).map(|e| e as u8),
            _ => None,
        };
        Self { sign, e1, e2 }
    }

    /// The approximated magnitude `2^e1 (+ 2^e2)`.
    pub fn approx_abs(&self) -> u64 {
        let mut v = 0u64;
        if let Some(e) = self.e1 {
            v += 1 << e;
        }
        if let Some(e) = self.e2 {
            v += 1 << e;
        }
        v
    }

    /// The approximated signed value.
    pub fn approx_value(&self) -> i64 {
        self.sign as i64 * self.approx_abs() as i64
    }

    /// Exponents of the one-hot product terms of `self * other`
    /// ("operands of addition have been quadrupled"), with the product sign.
    ///
    /// Returns `(sign, exponents)` where each exponent `e` contributes `2^e`.
    pub fn product_terms(&self, other: &Self) -> (i8, ProductTerms) {
        let sign = self.sign * other.sign;
        let mut terms = ProductTerms::default();
        if sign != 0 {
            for ea in [self.e1, self.e2].into_iter().flatten() {
                for eb in [other.e1, other.e2].into_iter().flatten() {
                    terms.push(ea as u32 + eb as u32);
                }
            }
        }
        (sign, terms)
    }
}

/// Up to four one-hot product-term exponents (fixed capacity, no allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductTerms {
    len: u8,
    exps: [u32; 4],
}

impl ProductTerms {
    fn push(&mut self, e: u32) {
        self.exps[self.len as usize] = e;
        self.len += 1;
    }

    /// The term exponents.
    pub fn as_slice(&self) -> &[u32] {
        &self.exps[..self.len as usize]
    }

    /// Exact sum of the one-hot terms.
    pub fn exact_sum(&self) -> u64 {
        self.as_slice().iter().map(|&e| 1u64 << e).sum()
    }

    /// OR-tree combination of the one-hot terms: a repeated exponent is
    /// absorbed (no carry), which is the hardware's approximation.
    pub fn or_tree(&self) -> u64 {
        self.as_slice().iter().fold(0u64, |acc, &e| acc | 1u64 << e)
    }
}

/// Log-domain dot product of two integer slices.
///
/// `lane` groups model the LD_DPU: each product's one-hot terms are combined
/// per [`AccumMode`], and products accumulate exactly (Wallace tree).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn log_dot(a: &[i32], b: &[i32], mode: LodMode, accum: AccumMode) -> i64 {
    assert_eq!(a.len(), b.len(), "log_dot length mismatch");
    let mut acc = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        let la = LogOperand::from_int(x, mode);
        let lb = LogOperand::from_int(y, mode);
        let (sign, terms) = la.product_terms(&lb);
        let mag = match accum {
            AccumMode::Exact => terms.exact_sum(),
            AccumMode::OneHotOrTree => terms.or_tree(),
        };
        acc += sign as i64 * mag as i64;
    }
    acc
}

/// An integer score matrix produced by log-domain MMUL, with enough range for
/// INT12 × INT12 × long-reduction accumulations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogScores {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl LogScores {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Score at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "score index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "score row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Log-domain `A · Bᵀ` over quantized matrices — the EPRE's predicted
/// attention score `Q'·K'ᵀ` (both operands stored row-major, `b` holding Kᵀ
/// rows as key vectors).
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn log_matmul_transpose_b(
    a: &QuantMatrix,
    b: &QuantMatrix,
    mode: LodMode,
    accum: AccumMode,
) -> LogScores {
    assert_eq!(
        a.cols(),
        b.cols(),
        "log_matmul inner-dimension mismatch: {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let rows = a.rows();
    let cols = b.rows();
    let mut data = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            data.push(log_dot(a.row(i), b.row(j), mode, accum));
        }
    }
    LogScores { rows, cols, data }
}

/// Log-domain `A · B` (for log-domain Q/K projection prediction).
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn log_matmul(a: &QuantMatrix, b: &QuantMatrix, mode: LodMode, accum: AccumMode) -> LogScores {
    assert_eq!(
        a.cols(),
        b.rows(),
        "log_matmul inner-dimension mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let rows = a.rows();
    let cols = b.cols();
    let mut data = Vec::with_capacity(rows * cols);
    let b_cols: Vec<Vec<i32>> = (0..cols)
        .map(|j| (0..b.rows()).map(|p| b.get(p, j)).collect())
        .collect();
    for i in 0..rows {
        for col in &b_cols {
            data.push(log_dot(a.row(i), col, mode, accum));
        }
    }
    LogScores { rows, cols, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_tensor::rng::seeded_uniform;
    use exion_tensor::{IntWidth, Matrix};

    #[test]
    fn lod_positions() {
        assert_eq!(lod(0), None);
        assert_eq!(lod(1), Some(0));
        assert_eq!(lod(2), Some(1));
        assert_eq!(lod(3), Some(1));
        assert_eq!(lod(2047), Some(10));
    }

    #[test]
    fn single_lod_keeps_leading_power() {
        for (x, want) in [(5, 4), (9, 8), (-6, -4), (1, 1), (0, 0)] {
            assert_eq!(
                LogOperand::from_int(x, LodMode::Single).approx_value(),
                want
            );
        }
    }

    #[test]
    fn two_step_lod_keeps_two_powers() {
        for (x, want) in [(5, 5), (9, 9), (7, 6), (-13, -12), (1, 1), (0, 0)] {
            assert_eq!(
                LogOperand::from_int(x, LodMode::TwoStep).approx_value(),
                want
            );
        }
    }

    #[test]
    fn two_step_never_worse_than_single() {
        for x in -2048..=2048 {
            let s = LogOperand::from_int(x, LodMode::Single).approx_value();
            let t = LogOperand::from_int(x, LodMode::TwoStep).approx_value();
            assert!((x as i64 - t).abs() <= (x as i64 - s).abs(), "x={x}");
        }
    }

    #[test]
    fn product_terms_quadrupled_for_two_step() {
        let a = LogOperand::from_int(5, LodMode::TwoStep); // 4 + 1
        let b = LogOperand::from_int(3, LodMode::TwoStep); // 2 + 1
        let (sign, terms) = a.product_terms(&b);
        assert_eq!(sign, 1);
        assert_eq!(terms.as_slice().len(), 4);
        assert_eq!(terms.exact_sum(), 15); // (4+1)(2+1) = 15
    }

    #[test]
    fn or_tree_absorbs_repeated_exponents() {
        // 5 = 4+1 and 5 = 4+1: cross terms 4·1 and 1·4 share exponent 2.
        let a = LogOperand::from_int(5, LodMode::TwoStep);
        let (_, terms) = a.product_terms(&a);
        assert_eq!(terms.exact_sum(), 25); // 16 + 4 + 4 + 1
        assert_eq!(terms.or_tree(), 21); // 16 | 4 | 4 | 1
    }

    #[test]
    fn zero_operand_kills_product() {
        let z = LogOperand::from_int(0, LodMode::TwoStep);
        let a = LogOperand::from_int(7, LodMode::TwoStep);
        let (sign, terms) = z.product_terms(&a);
        assert_eq!(sign, 0);
        assert!(terms.as_slice().is_empty());
    }

    #[test]
    fn log_dot_exact_mode_matches_operand_approximation() {
        let a = [3, -5, 0, 9];
        let b = [2, 2, 7, -1];
        let got = log_dot(&a, &b, LodMode::TwoStep, AccumMode::Exact);
        // All operands here are exactly representable with two powers.
        let want: i64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as i64).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn log_dot_correlates_with_real_dot() {
        // Averaged over several draws: a single random reduction can land
        // near zero, where the relative error of the OR-tree approximation
        // is unbounded regardless of its ranking quality.
        let mut abs_err = 0.0f64;
        let mut abs_exact = 0.0f64;
        let seeds = 8;
        for seed in 0..seeds {
            let a = seeded_uniform(1, 64, -1.0, 1.0, 5 + 2 * seed);
            let b = seeded_uniform(1, 64, -1.0, 1.0, 6 + 2 * seed);
            let qa = exion_tensor::QuantMatrix::quantize(&a, IntWidth::Int12);
            let qb = exion_tensor::QuantMatrix::quantize(&b, IntWidth::Int12);
            let exact: i64 = qa
                .row(0)
                .iter()
                .zip(qb.row(0))
                .map(|(&x, &y)| x as i64 * y as i64)
                .sum();
            let pred = log_dot(
                qa.row(0),
                qb.row(0),
                LodMode::TwoStep,
                AccumMode::OneHotOrTree,
            );
            abs_err += (pred - exact).abs() as f64;
            abs_exact += exact.abs() as f64;
        }
        // TS-LOD with OR-tree keeps the prediction within ~30–40% of exact
        // in aggregate — coarse, but far from an uncorrelated predictor
        // (aggregate rel err ≈ 1.4) and enough to rank attention scores.
        assert!(
            abs_err / abs_exact < 0.5,
            "aggregate rel err {}",
            abs_err / abs_exact
        );
    }

    #[test]
    fn ts_lod_predicts_better_than_lod_on_average() {
        let a = seeded_uniform(8, 32, -1.0, 1.0, 7);
        let b = seeded_uniform(8, 32, -1.0, 1.0, 8);
        let qa = exion_tensor::QuantMatrix::quantize(&a, IntWidth::Int12);
        let qb = exion_tensor::QuantMatrix::quantize(&b, IntWidth::Int12);
        let mut err_single = 0.0f64;
        let mut err_two = 0.0f64;
        for i in 0..8 {
            let exact: i64 = qa
                .row(i)
                .iter()
                .zip(qb.row(i))
                .map(|(&x, &y)| x as i64 * y as i64)
                .sum();
            let s = log_dot(qa.row(i), qb.row(i), LodMode::Single, AccumMode::Exact);
            let t = log_dot(qa.row(i), qb.row(i), LodMode::TwoStep, AccumMode::Exact);
            err_single += (s - exact).abs() as f64;
            err_two += (t - exact).abs() as f64;
        }
        assert!(
            err_two < err_single,
            "two-step {err_two} vs single {err_single}"
        );
    }

    #[test]
    fn log_matmul_shapes() {
        let a = exion_tensor::QuantMatrix::quantize(
            &Matrix::from_fn(3, 4, |r, c| (r + c) as f32),
            IntWidth::Int12,
        );
        let b = exion_tensor::QuantMatrix::quantize(
            &Matrix::from_fn(4, 5, |r, c| (r * c) as f32),
            IntWidth::Int12,
        );
        let s = log_matmul(&a, &b, LodMode::TwoStep, AccumMode::Exact);
        assert_eq!((s.rows(), s.cols()), (3, 5));
        let bt = exion_tensor::QuantMatrix::quantize(
            &Matrix::from_fn(5, 4, |r, c| (r * c) as f32),
            IntWidth::Int12,
        );
        let st = log_matmul_transpose_b(&a, &bt, LodMode::TwoStep, AccumMode::Exact);
        assert_eq!((st.rows(), st.cols()), (3, 5));
    }
}
