//! The improved Eager Prediction (EP) algorithm (paper Sections II-B and
//! IV-D).
//!
//! EP predicts the attention score with cheap log-domain arithmetic
//! ([`logdomain`]), then uses the prediction to skip most of the real-domain
//! attention computation ([`predict`]):
//!
//! * per predicted-score row, only the top-k entries are kept (the rest are
//!   zeroed before the softmax — they would be negligible after it);
//! * if the dominant entry exceeds the runner-up by more than a threshold
//!   `q_th`, the whole row collapses to a one-hot and its computation is
//!   skipped entirely;
//! * score columns kept by no row allow the K and V projections of those
//!   tokens to be skipped; one-hot rows allow the Q projection of those rows
//!   to be skipped.
//!
//! The original EP of the FACT accelerator uses single-step leading-one
//! detection (LOD); EXION's improvement is **two-step LOD** (TS-LOD), which
//! keeps the top two bit positions of each operand and quadruples the
//! addition operands, recovered cheaply by a one-hot OR-gate adder tree
//! (Fig. 15).

pub mod logdomain;
pub mod predict;

pub use logdomain::{
    lod, log_dot, log_matmul, log_matmul_transpose_b, AccumMode, LodMode, LogOperand, LogScores,
};
pub use predict::{
    execute_dense_attention, execute_sparse_attention, AttentionPlan, EpConfig, EpStats,
    SparseAttentionOutput,
};
