//! Attention-score prediction and the sparse attention plan (paper Fig. 5(b)).
//!
//! The EPRE predicts the attention score in the log domain, then EXION
//! derives a *plan*: which score elements must be computed in the real
//! domain, which rows collapse to one-hot outputs, and which Q rows / K,V
//! columns can skip their projections entirely.

use exion_tensor::softmax::softmax_row_inplace;
use exion_tensor::{ops, Matrix, QuantMatrix};
use serde::{Deserialize, Serialize};

use crate::bitmask::Bitmask2D;
use crate::ep::logdomain::{log_matmul_transpose_b, AccumMode, LodMode};
use crate::sparsity::OpCounts;

/// Eager-prediction configuration (the paper's Table I per-model `q_th` and
/// `k` values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpConfig {
    /// Dominance threshold, in real score units: if the predicted row maximum
    /// exceeds the runner-up by more than `q_th`, the row's computation is
    /// skipped entirely (one-hot approximation).
    pub q_th: f32,
    /// Top-k selection ratio (`k = 0.5` keeps 50% of each row).
    pub top_k_ratio: f32,
    /// Leading-one-detection depth used for the prediction.
    pub lod: LodMode,
    /// Accumulation model of the LD_DPU datapath.
    pub accum: AccumMode,
}

impl EpConfig {
    /// Creates a config with EXION's TS-LOD + OR-tree datapath.
    pub fn new(q_th: f32, top_k_ratio: f32) -> Self {
        Self {
            q_th,
            top_k_ratio,
            lod: LodMode::TwoStep,
            accum: AccumMode::OneHotOrTree,
        }
    }

    /// Same thresholds but with the original FACT-style single-step LOD.
    pub fn with_single_lod(mut self) -> Self {
        self.lod = LodMode::Single;
        self
    }
}

impl Default for EpConfig {
    fn default() -> Self {
        Self::new(0.5, 0.5)
    }
}

/// Statistics of one prediction (the paper's intra-iteration sparsity and
/// projection-skip percentages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpStats {
    /// Fraction of attention-score elements whose real-domain computation is
    /// skipped (zeroed by top-k or covered by a one-hot row) — the paper's
    /// *intra-iteration output sparsity* (20–95% across benchmarks).
    pub score_sparsity: f64,
    /// Number of rows collapsed to a one-hot output.
    pub one_hot_rows: usize,
    /// Fraction of Q-projection rows skipped (paper average: 26%).
    pub q_skip_fraction: f64,
    /// Fraction of K/V-projection columns skipped (paper average: 22%).
    pub kv_skip_fraction: f64,
}

/// The outcome of eager prediction: what the real-domain attention pass must
/// still compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionPlan {
    keep: Bitmask2D,
    one_hot: Vec<Option<usize>>,
    col_used: Vec<bool>,
    stats: EpStats,
}

impl AttentionPlan {
    /// Predicts the attention score `q · kᵀ` in the log domain and derives
    /// the plan.
    ///
    /// `score_scale` converts predicted integer scores to real units
    /// (`scale_q * scale_k / sqrt(d_head)`), so `q_th` is comparable across
    /// quantization calibrations.
    ///
    /// # Panics
    ///
    /// Panics if `q` and `k` have different feature widths, or if
    /// `top_k_ratio` is outside `(0, 1]`.
    pub fn predict(q: &QuantMatrix, k: &QuantMatrix, score_scale: f32, config: &EpConfig) -> Self {
        assert!(
            config.top_k_ratio > 0.0 && config.top_k_ratio <= 1.0,
            "top_k_ratio {} outside (0, 1]",
            config.top_k_ratio
        );
        let scores = log_matmul_transpose_b(q, k, config.lod, config.accum);
        let rows = scores.rows();
        let cols = scores.cols();
        let mut keep = Bitmask2D::zeros(rows, cols);
        let mut one_hot = vec![None; rows];
        let mut col_used = vec![false; cols];
        // The epsilon guards against f32→f64 artifacts (0.8f32 as f64 is
        // slightly above 0.8, which would bump the ceil).
        let keep_per_row =
            (((cols as f64 * config.top_k_ratio as f64) - 1e-6).ceil() as usize).clamp(1, cols);

        #[allow(clippy::needless_range_loop)] // r indexes scores, one_hot and keep together
        for r in 0..rows {
            let row = scores.row(r);
            let (arg_max, max, second) = max_and_runner_up(row);
            let dominance = (max - second) as f64 * score_scale as f64;
            if cols > 1 && dominance > config.q_th as f64 {
                // One-hot approximation: the softmax output is effectively a
                // delta at arg_max; the whole row is skipped.
                one_hot[r] = Some(arg_max);
                col_used[arg_max] = true;
                continue;
            }
            for c in top_k_indices(row, keep_per_row) {
                keep.set(r, c, true);
                col_used[c] = true;
            }
        }

        let kept = keep.count_ones();
        let total = rows * cols;
        let used_cols = col_used.iter().filter(|&&u| u).count();
        let one_hot_rows = one_hot.iter().filter(|o| o.is_some()).count();
        let stats = EpStats {
            score_sparsity: if total == 0 {
                0.0
            } else {
                1.0 - kept as f64 / total as f64
            },
            one_hot_rows,
            q_skip_fraction: if rows == 0 {
                0.0
            } else {
                one_hot_rows as f64 / rows as f64
            },
            kv_skip_fraction: if cols == 0 {
                0.0
            } else {
                1.0 - used_cols as f64 / cols as f64
            },
        };
        Self {
            keep,
            one_hot,
            col_used,
            stats,
        }
    }

    /// The keep bitmask over the attention score (1 = compute in real domain).
    pub fn keep(&self) -> &Bitmask2D {
        &self.keep
    }

    /// Per-row one-hot decision (`Some(col)` = row skipped, output is V\[col\]).
    pub fn one_hot(&self) -> &[Option<usize>] {
        &self.one_hot
    }

    /// Which key/value columns must still be projected.
    pub fn col_used(&self) -> &[bool] {
        &self.col_used
    }

    /// Prediction statistics.
    pub fn stats(&self) -> EpStats {
        self.stats
    }
}

/// Result of executing attention under a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseAttentionOutput {
    /// The attention output (`rows × d_v`).
    pub out: Matrix,
    /// Real-domain MACs performed vs. a dense attention computation
    /// (score MMUL + probability·V MMUL).
    pub ops: OpCounts,
}

/// Executes attention in the real domain, computing only what the plan keeps.
///
/// One-hot rows copy the dominant token's value row. Kept positions get exact
/// scores, a masked softmax, and a sparse probability·V accumulation.
///
/// # Panics
///
/// Panics on any shape mismatch between `q`, `k`, `v` and the plan.
pub fn execute_sparse_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    plan: &AttentionPlan,
    inv_sqrt_d: f32,
) -> SparseAttentionOutput {
    let rows = q.rows();
    let cols = k.rows();
    assert_eq!(q.cols(), k.cols(), "q/k width mismatch");
    assert_eq!(v.rows(), cols, "v row mismatch");
    assert_eq!(plan.keep.shape(), (rows, cols), "plan shape mismatch");
    let d = q.cols() as u64;
    let d_v = v.cols() as u64;

    let mut out = Matrix::zeros(rows, v.cols());
    let mut performed = 0u64;
    for r in 0..rows {
        if let Some(c) = plan.one_hot[r] {
            out.row_mut(r).copy_from_slice(v.row(c));
            continue;
        }
        let kept: Vec<usize> = (0..cols).filter(|&c| plan.keep.get(r, c)).collect();
        if kept.is_empty() {
            continue;
        }
        let mut scores: Vec<f32> = kept
            .iter()
            .map(|&c| ops::dot(q.row(r), k.row(c)) * inv_sqrt_d)
            .collect();
        performed += kept.len() as u64 * d;
        softmax_row_inplace(&mut scores);
        let out_row = out.row_mut(r);
        for (&c, &p) in kept.iter().zip(&scores) {
            for (o, &vv) in out_row.iter_mut().zip(v.row(c)) {
                *o += p * vv;
            }
        }
        performed += kept.len() as u64 * d_v;
    }

    let dense = rows as u64 * cols as u64 * (d + d_v);
    SparseAttentionOutput {
        out,
        ops: OpCounts::new(performed, dense),
    }
}

/// Dense reference attention (`softmax(q·kᵀ / sqrt(d)) · v`).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn execute_dense_attention(q: &Matrix, k: &Matrix, v: &Matrix, inv_sqrt_d: f32) -> Matrix {
    let scores = ops::scale(&ops::matmul_transpose_b(q, k), inv_sqrt_d);
    let probs = exion_tensor::softmax::softmax_rows(&scores);
    ops::matmul(&probs, v)
}

/// Index of maximum, maximum, and runner-up of a score row.
///
/// For a single-column row the runner-up equals the maximum, so no row can
/// be declared dominant.
fn max_and_runner_up(row: &[i64]) -> (usize, i64, i64) {
    debug_assert!(!row.is_empty());
    let mut arg = 0;
    let mut max = i64::MIN;
    let mut second = i64::MIN;
    for (i, &x) in row.iter().enumerate() {
        if x > max {
            second = max;
            max = x;
            arg = i;
        } else if x > second {
            second = x;
        }
    }
    if second == i64::MIN {
        second = max;
    }
    (arg, max, second)
}

/// Indices of the `k` largest entries (ties broken by lower index).
fn top_k_indices(row: &[i64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].cmp(&row[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_tensor::rng::seeded_uniform;
    use exion_tensor::{stats, IntWidth};

    fn quantize(m: &Matrix) -> QuantMatrix {
        QuantMatrix::quantize(m, IntWidth::Int12)
    }

    fn score_scale(q: &QuantMatrix, k: &QuantMatrix, d: usize) -> f32 {
        q.params().scale * k.params().scale / (d as f32).sqrt()
    }

    #[test]
    fn keep_all_plan_matches_dense_attention() {
        let d = 16;
        let q = seeded_uniform(8, d, -1.0, 1.0, 1);
        let k = seeded_uniform(12, d, -1.0, 1.0, 2);
        let v = seeded_uniform(12, 8, -1.0, 1.0, 3);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let config = EpConfig {
            q_th: f32::INFINITY,
            top_k_ratio: 1.0,
            lod: LodMode::TwoStep,
            accum: AccumMode::Exact,
        };
        let plan = AttentionPlan::predict(&qq, &qk, score_scale(&qq, &qk, d), &config);
        assert_eq!(plan.stats().one_hot_rows, 0);
        assert_eq!(plan.keep().count_ones(), 8 * 12);
        let sparse = execute_sparse_attention(&q, &k, &v, &plan, 1.0 / (d as f32).sqrt());
        let dense = execute_dense_attention(&q, &k, &v, 1.0 / (d as f32).sqrt());
        assert!(stats::relative_error(&dense, &sparse.out) < 1e-5);
        assert_eq!(sparse.ops.reduction(), 0.0);
    }

    #[test]
    fn top_k_keeps_exact_count_per_row() {
        let d = 8;
        let q = seeded_uniform(6, d, -1.0, 1.0, 4);
        let k = seeded_uniform(20, d, -1.0, 1.0, 5);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let config = EpConfig {
            q_th: f32::INFINITY, // no one-hot rows
            top_k_ratio: 0.25,
            lod: LodMode::TwoStep,
            accum: AccumMode::OneHotOrTree,
        };
        let plan = AttentionPlan::predict(&qq, &qk, score_scale(&qq, &qk, d), &config);
        for r in 0..6 {
            assert_eq!(plan.keep().row_count_ones(r), 5); // ceil(20 * 0.25)
        }
        assert!((plan.stats().score_sparsity - 0.75).abs() < 1e-9);
    }

    #[test]
    fn dominant_score_triggers_one_hot_row() {
        // Query 0 aligned with key 3, much larger than everything else.
        let d = 8;
        let mut q = Matrix::zeros(2, d);
        q.row_mut(0)[0] = 1.0;
        q.row_mut(1).fill(0.01);
        let mut k = Matrix::full(6, d, 0.01);
        k.row_mut(3)[0] = 1.0;
        let v = seeded_uniform(6, 4, -1.0, 1.0, 6);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let config = EpConfig::new(0.05, 0.5);
        let plan = AttentionPlan::predict(&qq, &qk, score_scale(&qq, &qk, d), &config);
        assert_eq!(plan.one_hot()[0], Some(3));
        let out = execute_sparse_attention(&q, &k, &v, &plan, 1.0 / (d as f32).sqrt());
        assert_eq!(out.out.row(0), v.row(3));
    }

    #[test]
    fn one_hot_rows_skip_all_row_ops() {
        let d = 8;
        let mut q = Matrix::zeros(1, d);
        q.row_mut(0)[0] = 1.0;
        let mut k = Matrix::zeros(4, d);
        k.row_mut(2)[0] = 1.0;
        let v = seeded_uniform(4, 4, -1.0, 1.0, 7);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let plan = AttentionPlan::predict(
            &qq,
            &qk,
            score_scale(&qq, &qk, d),
            &EpConfig::new(0.01, 0.5),
        );
        let out = execute_sparse_attention(&q, &k, &v, &plan, 1.0);
        assert_eq!(out.ops.performed, 0);
        assert!((plan.stats().q_skip_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unused_columns_reported_for_kv_skip() {
        let d = 8;
        let q = seeded_uniform(4, d, -1.0, 1.0, 8);
        let k = seeded_uniform(16, d, -1.0, 1.0, 9);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let config = EpConfig {
            q_th: f32::INFINITY,
            top_k_ratio: 0.1, // keep 2 of 16 per row → at most 8 used columns
            lod: LodMode::TwoStep,
            accum: AccumMode::OneHotOrTree,
        };
        let plan = AttentionPlan::predict(&qq, &qk, score_scale(&qq, &qk, d), &config);
        let used = plan.col_used().iter().filter(|&&u| u).count();
        assert!(used <= 8);
        assert!(plan.stats().kv_skip_fraction >= 0.5);
        // Every kept bit is in a used column.
        for (_, c) in plan.keep().iter_ones() {
            assert!(plan.col_used()[c]);
        }
    }

    #[test]
    fn sparse_attention_approximates_dense_with_generous_top_k() {
        let d = 16;
        let q = seeded_uniform(10, d, -1.0, 1.0, 10);
        let k = seeded_uniform(10, d, -1.0, 1.0, 11);
        let v = seeded_uniform(10, 8, -1.0, 1.0, 12);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let inv = 1.0 / (d as f32).sqrt();
        let plan = AttentionPlan::predict(
            &qq,
            &qk,
            score_scale(&qq, &qk, d),
            &EpConfig::new(f32::INFINITY, 0.8),
        );
        let sparse = execute_sparse_attention(&q, &k, &v, &plan, inv);
        let dense = execute_dense_attention(&q, &k, &v, inv);
        // Random Q/K produce a near-uniform softmax, the worst case for
        // top-k pruning; trained attention is far more concentrated. The
        // bound here only checks the approximation tracks dense attention.
        let err = stats::relative_error(&dense, &sparse.out);
        assert!(err < 0.3, "relative error {err}");
        assert!(sparse.ops.reduction() > 0.15);
    }

    #[test]
    fn single_column_never_one_hot() {
        let q = Matrix::full(2, 4, 1.0);
        let k = Matrix::full(1, 4, 1.0);
        let (qq, qk) = (quantize(&q), quantize(&k));
        let plan = AttentionPlan::predict(&qq, &qk, 1.0, &EpConfig::new(0.0, 1.0));
        assert!(plan.one_hot().iter().all(|o| o.is_none()));
        assert_eq!(plan.keep().count_ones(), 2);
    }

    #[test]
    fn helper_max_and_runner_up() {
        assert_eq!(max_and_runner_up(&[5, 1, 9, 9]), (2, 9, 9));
        assert_eq!(max_and_runner_up(&[3]), (0, 3, 3));
        assert_eq!(max_and_runner_up(&[-5, -2]), (1, -2, -5));
    }

    #[test]
    fn helper_top_k() {
        assert_eq!(top_k_indices(&[5, 1, 9, 7], 2), vec![2, 3]);
        assert_eq!(top_k_indices(&[1, 1, 1], 2), vec![0, 1]);
    }
}
