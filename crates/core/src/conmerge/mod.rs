//! The ConMerge data-compaction mechanism (paper Section III-B, Figs. 8–9 and
//! 12–14).
//!
//! GPUs cannot exploit the fine-grained, unstructured *output* sparsity that
//! FFN-Reuse and eager prediction create. ConMerge converts the large sparse
//! output bitmask into a small number of dense 16×16 work blocks:
//!
//! 1. **Condensing** ([`condense`]) removes columns whose bitmask is entirely
//!    zero. This happens at two granularities: globally (Fig. 8's metric) and
//!    per 16-row tile inside the CAU — "when data in bitmasks are all zero,
//!    those inputs are not stored in the SortBuffer, constituting the
//!    condensing in the ConMerge mechanism" (Fig. 13).
//! 2. **Sorting** ([`classify`]) coarsely orders the surviving columns by
//!    sparsity level in the SortBuffer, so dense blocks are merged with sparse
//!    blocks, cutting merge-failure cycles by 29–73% (Fig. 12).
//! 3. **Merging** ([`merge`]) overlays up to three blocks into one, resolving
//!    position conflicts by relocating elements to empty rows under the
//!    conflict-vector constraint (one alternate input row per DPU lane) and
//!    the triple-buffered-WMEM constraint (at most three weight-column origins
//!    per array column).
//!
//! [`TileCompactor`] runs the full pipeline over a whole output bitmask, one
//! row-tile at a time, exactly as the hardware does, and [`cvg`] accounts the
//! ConMerge-vector-generation cycles.

pub mod classify;
pub mod condense;
pub mod cvg;
pub mod encoding;
pub mod merge;

pub use classify::{SortBuffer, SparsityClass};
pub use condense::{condense_global, CondenseStats};
pub use cvg::{CvgResult, VectorGenerator};
pub use encoding::{blocks_per_cvmem, EncodedVectors};
pub use merge::{Block, ColumnEntry, MergedBlock, Slot};

use serde::{Deserialize, Serialize};

use crate::bitmask::Bitmask2D;

/// Configuration of the compaction pipeline, defaulting to the paper's
/// EXION configuration (16×16 DPU array, sorted merging, two merge steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionConfig {
    /// DPU-array height (rows per tile; IMEM/OMEM bank count). Max 64.
    pub tile_height: usize,
    /// DPU-array width (columns per block; WMEM bank count).
    pub tile_width: usize,
    /// Sort columns by sparsity class before merging (Fig. 12). Disable for
    /// the unsorted ablation.
    pub sorted: bool,
    /// Maximum merges per output block: 2 in EXION (triple-buffered WMEM ⇒
    /// up to 3 source blocks). 0 disables merging (condense-only ablation).
    pub max_merges: usize,
}

impl CompactionConfig {
    /// The paper's toy model of Figs. 8–9 and 11: an 8-row × 3-column array.
    pub fn toy() -> Self {
        Self {
            tile_height: 8,
            tile_width: 3,
            sorted: true,
            max_merges: 2,
        }
    }
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            tile_height: 16,
            tile_width: 16,
            sorted: true,
            max_merges: 2,
        }
    }
}

/// Aggregate result of compacting a whole output bitmask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionReport {
    /// Number of row-tiles processed.
    pub tiles: usize,
    /// Column count of the original output matrix.
    pub input_cols: usize,
    /// Dense execution baseline: blocks the array would run without ConMerge
    /// (`tiles * ceil(input_cols / width)`).
    pub dense_blocks: u64,
    /// Blocks remaining after condense + merge.
    pub merged_blocks: u64,
    /// Columns surviving *global* condensing (the Fig. 8 metric: a column is
    /// removed only if it is zero across **all** rows).
    pub global_condense_cols: usize,
    /// Block count if only per-tile condensing ran (merging disabled).
    pub condense_only_blocks: u64,
    /// Total CVG cycles spent generating ConMerge vectors.
    pub cvg_cycles: u64,
    /// Occupied slot fraction over all merged blocks (what clock gating acts
    /// on after merging).
    pub mean_block_utilization: f64,
}

impl CompactionReport {
    /// Remaining-column fraction after the full ConMerge pipeline
    /// (the Fig. 9 / Fig. 17 "Merging" metric).
    pub fn remaining_column_fraction(&self) -> f64 {
        if self.dense_blocks == 0 {
            0.0
        } else {
            self.merged_blocks as f64 / self.dense_blocks as f64
        }
    }

    /// Remaining-column fraction after global condensing only
    /// (the Fig. 8 / Fig. 17 "Condensing" metric).
    pub fn global_condense_fraction(&self) -> f64 {
        if self.input_cols == 0 {
            0.0
        } else {
            self.global_condense_cols as f64 / self.input_cols as f64
        }
    }

    /// Remaining-block fraction with per-tile condensing but no merging
    /// (ablation).
    pub fn condense_only_fraction(&self) -> f64 {
        if self.dense_blocks == 0 {
            0.0
        } else {
            self.condense_only_blocks as f64 / self.dense_blocks as f64
        }
    }
}

/// Runs the ConMerge pipeline over whole output bitmasks, tile by tile.
#[derive(Debug, Clone)]
pub struct TileCompactor {
    config: CompactionConfig,
}

impl TileCompactor {
    /// Creates a compactor.
    ///
    /// # Panics
    ///
    /// Panics if `tile_height` is 0 or exceeds 64, or `tile_width` is 0.
    pub fn new(config: CompactionConfig) -> Self {
        assert!(
            (1..=64).contains(&config.tile_height),
            "tile height must be in 1..=64"
        );
        assert!(config.tile_width > 0, "tile width must be positive");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CompactionConfig {
        self.config
    }

    /// Compacts one row-tile `[row0, row0 + height)` of an output bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the mask bounds.
    pub fn compact_tile(&self, mask: &Bitmask2D, row0: usize, height: usize) -> CvgResult {
        let entries: Vec<ColumnEntry> = (0..mask.cols())
            .map(|c| ColumnEntry {
                origin: c,
                mask: mask.tile_col_mask(row0, height, c),
            })
            .collect();
        VectorGenerator::new(height, self.config.tile_width, self.config.sorted)
            .with_max_merges(self.config.max_merges)
            .generate(entries)
    }

    /// Compacts a whole output bitmask and aggregates the per-tile results.
    pub fn compact_matrix(&self, mask: &Bitmask2D) -> CompactionReport {
        let width = self.config.tile_width;
        let mut report = CompactionReport {
            input_cols: mask.cols(),
            global_condense_cols: condense_global(mask).remaining,
            ..CompactionReport::default()
        };
        let mut occupied = 0u64;
        let mut slots = 0u64;
        let mut row0 = 0;
        while row0 < mask.rows() {
            let height = self.config.tile_height.min(mask.rows() - row0);
            let r = self.compact_tile(mask, row0, height);
            report.tiles += 1;
            report.dense_blocks += mask.cols().div_ceil(width) as u64;
            report.merged_blocks += r.merged_blocks.len() as u64;
            report.condense_only_blocks += r.surviving_cols.div_ceil(width) as u64;
            report.cvg_cycles += r.cycles;
            for b in &r.merged_blocks {
                occupied += b.occupied_slots() as u64;
                slots += (b.height() * b.width()) as u64;
            }
            row0 += height;
        }
        report.mean_block_utilization = if slots == 0 {
            0.0
        } else {
            occupied as f64 / slots as f64
        };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_mask_cannot_compact() {
        let mask = Bitmask2D::ones(16, 64);
        let report = TileCompactor::new(CompactionConfig::default()).compact_matrix(&mask);
        assert_eq!(report.merged_blocks, report.dense_blocks);
        assert!((report.remaining_column_fraction() - 1.0).abs() < 1e-12);
        assert!((report.global_condense_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mask_compacts_to_nothing() {
        let mask = Bitmask2D::zeros(16, 64);
        let report = TileCompactor::new(CompactionConfig::default()).compact_matrix(&mask);
        assert_eq!(report.merged_blocks, 0);
        assert_eq!(report.global_condense_cols, 0);
    }

    #[test]
    fn sparse_mask_compacts_below_condense_only() {
        // ~6% density, scattered: global condensing barely helps (tall
        // matrix), but tile condensing + merging collapse most blocks.
        let mask = Bitmask2D::from_fn(64, 128, |r, c| (r * 37 + c * 11) % 17 == 0);
        let report = TileCompactor::new(CompactionConfig::default()).compact_matrix(&mask);
        assert!(report.merged_blocks <= report.condense_only_blocks);
        assert!(report.remaining_column_fraction() < report.global_condense_fraction());
    }

    #[test]
    fn merging_never_increases_blocks() {
        let mask = Bitmask2D::from_fn(32, 96, |r, c| (r + c) % 7 == 0);
        let merged = TileCompactor::new(CompactionConfig::default()).compact_matrix(&mask);
        let condense_only = TileCompactor::new(CompactionConfig {
            max_merges: 0,
            ..CompactionConfig::default()
        })
        .compact_matrix(&mask);
        assert!(merged.merged_blocks <= condense_only.merged_blocks);
        assert_eq!(
            condense_only.merged_blocks,
            condense_only.condense_only_blocks
        );
    }

    #[test]
    fn ragged_tail_tile_is_processed() {
        let mask = Bitmask2D::from_fn(20, 20, |r, c| r == 0 && c < 3);
        let report = TileCompactor::new(CompactionConfig::default()).compact_matrix(&mask);
        assert_eq!(report.tiles, 2); // 16 + 4 rows
        assert_eq!(report.merged_blocks, 1); // only the first tile has work
    }

    #[test]
    #[should_panic(expected = "tile height")]
    fn rejects_oversized_tile_height() {
        let _ = TileCompactor::new(CompactionConfig {
            tile_height: 65,
            ..CompactionConfig::default()
        });
    }
}
