//! Condensing: removing all-zero output columns (paper Fig. 8).
//!
//! "When all elements in a column are sparse, the condensing process removes
//! the corresponding column. This reduces the number of required operations
//! in the MMUL proportionally … Moreover, it decreases the required external
//! memory accesses for fetching weight data."

use serde::{Deserialize, Serialize};

use crate::bitmask::Bitmask2D;

/// Outcome of global condensing over a full output bitmask.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondenseStats {
    /// Original column count.
    pub total: usize,
    /// Columns with at least one non-sparse element (must still be computed).
    pub remaining: usize,
    /// Indices of the remaining columns, in original order.
    pub kept_columns: Vec<usize>,
}

impl CondenseStats {
    /// Remaining-column fraction (the paper's Fig. 8 percentages: 13.8% for
    /// MLD, 77.4% for Stable Diffusion).
    pub fn remaining_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.remaining as f64 / self.total as f64
        }
    }
}

/// Applies global condensing: a column survives iff any row has a set bit.
pub fn condense_global(mask: &Bitmask2D) -> CondenseStats {
    let kept_columns: Vec<usize> = (0..mask.cols()).filter(|&c| !mask.col_is_zero(c)).collect();
    CondenseStats {
        total: mask.cols(),
        remaining: kept_columns.len(),
        kept_columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_nonzero_columns() {
        let mask = Bitmask2D::from_fn(4, 5, |r, c| c == 1 || (c == 3 && r == 2));
        let stats = condense_global(&mask);
        assert_eq!(stats.total, 5);
        assert_eq!(stats.remaining, 2);
        assert_eq!(stats.kept_columns, vec![1, 3]);
        assert!((stats.remaining_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_zero_mask_condenses_fully() {
        let stats = condense_global(&Bitmask2D::zeros(8, 8));
        assert_eq!(stats.remaining, 0);
        assert!(stats.kept_columns.is_empty());
    }

    #[test]
    fn dense_mask_keeps_everything() {
        let stats = condense_global(&Bitmask2D::ones(2, 3));
        assert_eq!(stats.remaining, 3);
        assert!((stats.remaining_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tall_matrix_condenses_poorly() {
        // The paper's Stable Diffusion observation: with many rows, a column
        // is rarely all-zero even at high overall sparsity.
        let short = Bitmask2D::from_fn(4, 100, |r, c| (r * 53 + c * 7) % 20 == 0);
        let tall = Bitmask2D::from_fn(256, 100, |r, c| (r * 53 + c * 7) % 20 == 0);
        let f_short = condense_global(&short).remaining_fraction();
        let f_tall = condense_global(&tall).remaining_fraction();
        assert!(f_tall > f_short, "tall {f_tall} vs short {f_short}");
    }
}
