//! Sparsity-level classification and the SortBuffer (paper Fig. 13).
//!
//! "A sparsity-level classifier first counts the number of non-zero bits in
//! the bitmask and decides the sparsity level of each input data, from high
//! dense to high sparse. Next, the SortBuffer selects a class and stores the
//! data in the corresponding class … if a class is full, it sends the input
//! bitmask with the column index to the next sparse class, and if that is
//! also full, it sends the bitmask to the extra class."
//!
//! The result is a *coarse* sort — "not completely but in a coarse manner,
//! which is sufficient to increase the success ratio of merging".

use serde::{Deserialize, Serialize};

use super::merge::ColumnEntry;

/// The SortBuffer's five sparsity classes, densest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SparsityClass {
    /// ≥ 75% of rows set.
    HighDense,
    /// 50–75% set.
    Dense,
    /// 25–50% set.
    Sparse,
    /// < 25% set (but non-zero — all-zero columns are condensed away).
    HighSparse,
    /// Overflow class for entries whose own and fallback classes were full.
    Extra,
}

impl SparsityClass {
    /// Classifies a column by the set-bit count of its `height`-row bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `popcount` is 0 (condensed columns never reach the
    /// SortBuffer) or exceeds `height`.
    pub fn classify(popcount: usize, height: usize) -> Self {
        assert!(
            popcount > 0,
            "all-zero columns are condensed, not classified"
        );
        assert!(
            popcount <= height,
            "popcount {popcount} exceeds height {height}"
        );
        let frac = popcount as f64 / height as f64;
        if frac >= 0.75 {
            SparsityClass::HighDense
        } else if frac >= 0.5 {
            SparsityClass::Dense
        } else if frac >= 0.25 {
            SparsityClass::Sparse
        } else {
            SparsityClass::HighSparse
        }
    }

    /// The next-sparser class an overflowing entry falls through to
    /// (`Extra` is terminal).
    pub fn next_sparser(&self) -> SparsityClass {
        match self {
            SparsityClass::HighDense => SparsityClass::Dense,
            SparsityClass::Dense => SparsityClass::Sparse,
            SparsityClass::Sparse => SparsityClass::HighSparse,
            SparsityClass::HighSparse | SparsityClass::Extra => SparsityClass::Extra,
        }
    }
}

/// The CAU's class-partitioned sort buffer.
///
/// Entries land in their sparsity class (falling through on overflow per the
/// paper), and [`SortBuffer::drain_densest_first`] yields the coarsely sorted
/// column order the ConMerge vector generator consumes.
#[derive(Debug, Clone)]
pub struct SortBuffer {
    height: usize,
    capacity_per_class: usize,
    classes: [Vec<ColumnEntry>; 5],
}

impl SortBuffer {
    /// Creates a buffer for `height`-row tiles. `capacity_per_class` bounds
    /// each non-`Extra` class (the hardware's fixed SRAM banks); the `Extra`
    /// class is unbounded in the model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_class` is zero.
    pub fn new(height: usize, capacity_per_class: usize) -> Self {
        assert!(capacity_per_class > 0, "class capacity must be positive");
        Self {
            height,
            capacity_per_class,
            classes: Default::default(),
        }
    }

    fn class_index(class: SparsityClass) -> usize {
        match class {
            SparsityClass::HighDense => 0,
            SparsityClass::Dense => 1,
            SparsityClass::Sparse => 2,
            SparsityClass::HighSparse => 3,
            SparsityClass::Extra => 4,
        }
    }

    /// Inserts a column entry, applying the overflow fall-through rule.
    ///
    /// # Panics
    ///
    /// Panics if the entry's bitmask is all-zero (should have been condensed).
    pub fn push(&mut self, entry: ColumnEntry) {
        let pop = entry.mask.count_ones() as usize;
        let mut class = SparsityClass::classify(pop, self.height);
        loop {
            let idx = Self::class_index(class);
            let is_extra = class == SparsityClass::Extra;
            if is_extra || self.classes[idx].len() < self.capacity_per_class {
                self.classes[idx].push(entry);
                return;
            }
            class = class.next_sparser();
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently in `class`.
    pub fn class(&self, class: SparsityClass) -> &[ColumnEntry] {
        &self.classes[Self::class_index(class)]
    }

    /// Drains all entries, densest class first (`Extra` entries are emitted by
    /// their own popcount position: the model re-sorts only the coarse class
    /// order, matching the hardware's class-granular read).
    pub fn drain_densest_first(&mut self) -> Vec<ColumnEntry> {
        let mut out = Vec::with_capacity(self.len());
        // Extra entries rejoin the stream after HighSparse (they overflowed
        // toward the sparse end by construction).
        for class in [
            SparsityClass::HighDense,
            SparsityClass::Dense,
            SparsityClass::Sparse,
            SparsityClass::HighSparse,
            SparsityClass::Extra,
        ] {
            out.append(&mut self.classes[Self::class_index(class)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(origin: usize, mask: u64) -> ColumnEntry {
        ColumnEntry { origin, mask }
    }

    #[test]
    fn classify_bands() {
        assert_eq!(SparsityClass::classify(16, 16), SparsityClass::HighDense);
        assert_eq!(SparsityClass::classify(12, 16), SparsityClass::HighDense);
        assert_eq!(SparsityClass::classify(8, 16), SparsityClass::Dense);
        assert_eq!(SparsityClass::classify(4, 16), SparsityClass::Sparse);
        assert_eq!(SparsityClass::classify(1, 16), SparsityClass::HighSparse);
    }

    #[test]
    #[should_panic(expected = "condensed")]
    fn classify_rejects_zero_popcount() {
        let _ = SparsityClass::classify(0, 16);
    }

    #[test]
    fn next_sparser_chain_terminates_at_extra() {
        let mut c = SparsityClass::HighDense;
        for _ in 0..10 {
            c = c.next_sparser();
        }
        assert_eq!(c, SparsityClass::Extra);
    }

    #[test]
    fn push_lands_in_matching_class() {
        let mut buf = SortBuffer::new(16, 4);
        buf.push(entry(0, 0xFFFF)); // 16 ones → HighDense
        buf.push(entry(1, 0x0001)); // 1 one → HighSparse
        assert_eq!(buf.class(SparsityClass::HighDense).len(), 1);
        assert_eq!(buf.class(SparsityClass::HighSparse).len(), 1);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn overflow_falls_through_to_sparser_class_then_extra() {
        let mut buf = SortBuffer::new(16, 1);
        buf.push(entry(0, 0xFFFF)); // HighDense (fills it)
        buf.push(entry(1, 0xFFFF)); // overflows → Dense
        buf.push(entry(2, 0xFFFF)); // overflows Dense → Sparse
        buf.push(entry(3, 0xFFFF)); // → HighSparse
        buf.push(entry(4, 0xFFFF)); // → Extra
        buf.push(entry(5, 0xFFFF)); // Extra is unbounded
        assert_eq!(buf.class(SparsityClass::Dense).len(), 1);
        assert_eq!(buf.class(SparsityClass::Extra).len(), 2);
    }

    #[test]
    fn drain_is_coarsely_densest_first() {
        let mut buf = SortBuffer::new(16, 8);
        buf.push(entry(0, 0x0001)); // HighSparse
        buf.push(entry(1, 0xFFFF)); // HighDense
        buf.push(entry(2, 0x00FF)); // Dense
        let order: Vec<usize> = buf.drain_densest_first().iter().map(|e| e.origin).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert!(buf.is_empty());
    }
}
