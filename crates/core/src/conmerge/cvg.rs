//! The ConMerge vector generator (paper Figs. 13–14): drives per-tile
//! condensing, sorting, and the block-merge schedule, and accounts the cycles
//! the CAU spends doing it.
//!
//! Cycle model (documented here, used by Fig. 12's sorted-vs-unsorted
//! comparison and by the simulator's CAU pipeline):
//!
//! * 1 cycle per incoming column entry (sparsity-level classification and
//!   SortBuffer insert — pipelined with the SDUE's dense iteration),
//! * 1 cycle per block read out of the SortBuffer,
//! * per merge attempt: 1 cycle to build the bitmask map, 1 cycle for the
//!   initial DOF evaluation, and 1 cycle per conflict-solving step — whether
//!   the attempt ultimately succeeds or fails;
//! * a failed attempt additionally pays a retry penalty (SortBuffer re-read,
//!   bitmask-map teardown, pipeline restart) — the waste that sorting
//!   removes (Fig. 12).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use super::classify::SortBuffer;
use super::merge::{Block, ColumnEntry, MergedBlock};

/// Extra cycles a failed merge attempt wastes on top of its resolution steps
/// (SortBuffer re-read and bitmask-map teardown before retrying).
const FAILED_ATTEMPT_PENALTY: u64 = 4;

/// Result of generating ConMerge vectors for one row-tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvgResult {
    /// The merged blocks the SDUE will execute, in schedule order.
    pub merged_blocks: Vec<MergedBlock>,
    /// CVG cycles spent (classification + reads + merge attempts).
    pub cycles: u64,
    /// Cycles spent in the merge phase only (attempts, conflict resolution,
    /// failure penalties) — the quantity Fig. 12 compares sorted vs unsorted.
    pub merge_cycles: u64,
    /// Columns presented to the CAU.
    pub input_cols: usize,
    /// Columns surviving per-tile condensing (non-zero bitmask).
    pub surviving_cols: usize,
    /// Merge attempts that failed (wasted work, reduced by sorting).
    pub failed_attempts: u64,
}

impl CvgResult {
    /// Equivalent remaining-column count: each merged block still occupies a
    /// full array pass of `width` columns.
    pub fn remaining_equivalent_cols(&self, width: usize) -> usize {
        self.merged_blocks.len() * width
    }
}

/// Per-tile ConMerge vector generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorGenerator {
    height: usize,
    width: usize,
    sorted: bool,
    max_merges: usize,
}

impl VectorGenerator {
    /// Creates a generator for `height`-row tiles on a `width`-column array.
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or exceeds 64, or `width` is 0.
    pub fn new(height: usize, width: usize, sorted: bool) -> Self {
        assert!((1..=64).contains(&height), "tile height must be in 1..=64");
        assert!(width > 0, "array width must be positive");
        Self {
            height,
            width,
            sorted,
            max_merges: 2,
        }
    }

    /// Sets the maximum number of merges per output block (EXION: 2).
    pub fn with_max_merges(mut self, max_merges: usize) -> Self {
        self.max_merges = max_merges;
        self
    }

    /// Generates the merged-block schedule for one tile's column entries.
    ///
    /// # Panics
    ///
    /// Panics if any entry's mask has bits above the tile height.
    pub fn generate(&self, entries: Vec<ColumnEntry>) -> CvgResult {
        let input_cols = entries.len();
        // Classification: one cycle per column (Fig. 13's monitoring logic).
        let mut cycles = input_cols as u64;

        // Per-tile condensing: all-zero columns are never stored.
        let surviving: Vec<ColumnEntry> = entries.into_iter().filter(|e| e.mask != 0).collect();
        let surviving_cols = surviving.len();

        // Coarse sparsity sort (or the original order for the ablation).
        let ordered = if self.sorted {
            let mut buf = SortBuffer::new(self.height, surviving_cols.max(1));
            for e in surviving {
                buf.push(e);
            }
            buf.drain_densest_first()
        } else {
            surviving
        };

        // Chunk into blocks of array width; one read cycle per block.
        let mut queue: VecDeque<Block> = ordered
            .chunks(self.width)
            .map(|chunk| Block::new(self.height, chunk.to_vec()))
            .collect();
        cycles += queue.len() as u64;

        let mut merged_blocks = Vec::new();
        let mut failed_attempts = 0u64;
        let mut merge_cycles = 0u64;
        while let Some(base) = queue.pop_front() {
            let mut merged = MergedBlock::from_block(&base, self.width);
            let mut merges_done = 0;
            while merges_done < self.max_merges && !queue.is_empty() {
                // Sorted: pair the dense front with candidates from the sparse
                // back ("(Dense+Sparse) + Sparse_Next"). Unsorted: take blocks
                // in their arrival order.
                let candidate_order: Vec<usize> = if self.sorted {
                    (0..queue.len()).rev().collect()
                } else {
                    (0..queue.len()).collect()
                };
                let mut success = None;
                for i in candidate_order {
                    match merged.try_merge(&queue[i], (merges_done + 1) as u8) {
                        Ok((m, c)) => {
                            merge_cycles += c;
                            success = Some((m, i));
                            break;
                        }
                        Err(c) => {
                            merge_cycles += c + FAILED_ATTEMPT_PENALTY;
                            failed_attempts += 1;
                        }
                    }
                }
                match success {
                    Some((m, i)) => {
                        merged = m;
                        queue.remove(i);
                        merges_done += 1;
                    }
                    None => break,
                }
            }
            merged_blocks.push(merged);
        }
        cycles += merge_cycles;

        CvgResult {
            merged_blocks,
            cycles,
            merge_cycles,
            input_cols,
            surviving_cols,
            failed_attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn entries_from_masks(masks: &[u64]) -> Vec<ColumnEntry> {
        masks
            .iter()
            .enumerate()
            .map(|(origin, &mask)| ColumnEntry { origin, mask })
            .collect()
    }

    #[test]
    fn empty_tile_produces_no_blocks() {
        let r = VectorGenerator::new(16, 16, true).generate(Vec::new());
        assert!(r.merged_blocks.is_empty());
        assert_eq!(r.input_cols, 0);
    }

    #[test]
    fn all_zero_columns_are_condensed() {
        let r = VectorGenerator::new(16, 16, true).generate(entries_from_masks(&[0, 0, 0, 0]));
        assert_eq!(r.input_cols, 4);
        assert_eq!(r.surviving_cols, 0);
        assert!(r.merged_blocks.is_empty());
    }

    #[test]
    fn three_sparse_blocks_merge_into_one() {
        // 3 columns of width-1 array, disjoint rows → 3 blocks merge to 1.
        let r = VectorGenerator::new(4, 1, true)
            .generate(entries_from_masks(&[0b0001, 0b0010, 0b0100]));
        assert_eq!(r.merged_blocks.len(), 1);
        assert_eq!(r.merged_blocks[0].source_blocks(), 3);
        assert_eq!(r.remaining_equivalent_cols(1), 1);
    }

    #[test]
    fn max_merges_zero_disables_merging() {
        let r = VectorGenerator::new(4, 1, true)
            .with_max_merges(0)
            .generate(entries_from_masks(&[0b0001, 0b0010, 0b0100]));
        assert_eq!(r.merged_blocks.len(), 3);
        assert!(r.merged_blocks.iter().all(|b| b.source_blocks() == 1));
    }

    #[test]
    fn coverage_preserved_across_schedule() {
        let masks = [0b1010u64, 0b0101, 0b0011, 0b1000, 0b0110, 0, 0b0001];
        let r = VectorGenerator::new(4, 2, true).generate(entries_from_masks(&masks));
        let total_bits: usize = masks.iter().map(|m| m.count_ones() as usize).sum();
        let placed: usize = r.merged_blocks.iter().map(|b| b.occupied_slots()).sum();
        assert_eq!(placed, total_bits);
        // Every original (row, col) bit appears exactly once.
        let mut cover: Vec<(usize, usize)> =
            r.merged_blocks.iter().flat_map(|b| b.coverage()).collect();
        cover.sort_unstable();
        let mut want = Vec::new();
        for (c, &m) in masks.iter().enumerate() {
            for row in 0..4 {
                if m >> row & 1 == 1 {
                    want.push((row, c));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(cover, want);
    }

    #[test]
    fn sorting_reduces_cycles_on_mixed_density_workloads() {
        // Fig. 12: merging after sorting cuts CVG cycles by 29–73%. Use a
        // bimodal, randomly interleaved column population (very dense and
        // very sparse): unsorted blocks end up mixed-density and their merges
        // fail often, wasting resolution cycles.
        let mut rng = StdRng::seed_from_u64(42);
        let mut masks: Vec<u64> = Vec::new();
        for _ in 0..96 {
            // popcount ~13 of 16
            let mut dense = 0xFFFFu64;
            for _ in 0..3 {
                dense &= !(1u64 << rng.random_range(0..16));
            }
            masks.push(dense);
            masks.push(1u64 << rng.random_range(0..16));
        }
        // Shuffle deterministically so density is interleaved arbitrarily.
        for i in (1..masks.len()).rev() {
            masks.swap(i, rng.random_range(0..i + 1));
        }
        let sorted = VectorGenerator::new(16, 16, true).generate(entries_from_masks(&masks));
        let unsorted = VectorGenerator::new(16, 16, false).generate(entries_from_masks(&masks));
        assert!(
            sorted.cycles < unsorted.cycles,
            "sorted {} vs unsorted {}",
            sorted.cycles,
            unsorted.cycles
        );
        assert!(sorted.merged_blocks.len() <= unsorted.merged_blocks.len());
    }

    #[test]
    fn merged_block_count_bounded_below_by_thirds() {
        // With max 3 sources per block, N surviving blocks cannot shrink below
        // ceil(N/3).
        let masks: Vec<u64> = (0..48).map(|i| 1u64 << (i % 16)).collect();
        let r = VectorGenerator::new(16, 16, true).generate(entries_from_masks(&masks));
        let dense_blocks = 48usize.div_ceil(16);
        assert!(r.merged_blocks.len() >= dense_blocks.div_ceil(3));
    }

    #[test]
    fn cycles_grow_with_input() {
        let small = VectorGenerator::new(16, 16, true).generate(entries_from_masks(&[0xFFFF; 16]));
        let large = VectorGenerator::new(16, 16, true).generate(entries_from_masks(&[0xFFFF; 64]));
        assert!(large.cycles > small.cycles);
    }
}
