//! Merging: overlaying sparse blocks into one dense block (paper Figs. 9
//! and 14).
//!
//! A *block* is up to `width` output columns over one row-tile. Merging
//! overlays an incoming block onto a (possibly already merged) block:
//!
//! * positions occupied in only one block transfer directly;
//! * positions occupied in both — **conflicts** — are resolved by moving the
//!   incoming element "to other sparse rows within the same column";
//! * each relocation makes the destination DPU lane read the source input row
//!   over its *conflict line*, so a lane can host relocated elements from at
//!   most **one** source row — the per-lane conflict vector (CV) slot;
//! * each array column can broadcast at most three weight columns (the
//!   triple-buffered WMEM), so a merged block has at most three source blocks.
//!
//! Conflict resolution order follows Fig. 14: the column with the smallest
//! *degree of freedom* (empty-and-CV-writable slots minus pending conflicts)
//! is resolved first, pairing its first conflict with its first compatible
//! empty slot.

use serde::{Deserialize, Serialize};

/// One output column of a row-tile: its original weight-column index and its
/// packed row bitmask (bit `i` = row `i` must be computed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnEntry {
    /// Original weight-column index (the CAU's 10-bit "Col. Origin Idx").
    pub origin: usize,
    /// Row bitmask (the CAU's 16-bit "BitMask", generalized to 64 rows).
    pub mask: u64,
}

impl ColumnEntry {
    /// Number of rows that must be computed.
    pub fn popcount(&self) -> usize {
        self.mask.count_ones() as usize
    }
}

/// Up to `width` column entries scheduled together on the DPU array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    height: usize,
    cols: Vec<ColumnEntry>,
}

impl Block {
    /// Creates a block over a `height`-row tile.
    ///
    /// # Panics
    ///
    /// Panics if `height` exceeds 64 or any mask has bits above `height`.
    pub fn new(height: usize, cols: Vec<ColumnEntry>) -> Self {
        assert!(height <= 64, "tile height above 64 unsupported");
        for c in &cols {
            assert!(
                height == 64 || c.mask >> height == 0,
                "column {} mask has bits above height {height}",
                c.origin
            );
        }
        Self { height, cols }
    }

    /// Tile height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of columns in the block.
    pub fn width_used(&self) -> usize {
        self.cols.len()
    }

    /// The column entries.
    pub fn cols(&self) -> &[ColumnEntry] {
        &self.cols
    }

    /// Total number of set bits.
    pub fn popcount(&self) -> usize {
        self.cols.iter().map(|c| c.popcount()).sum()
    }
}

/// One DPU's work assignment inside a merged block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Input row the DPU reads (its own lane row, or the CV row over the
    /// conflict line).
    pub input_row: usize,
    /// Original weight-column index (selects the WMEM bank content).
    pub weight_col: usize,
    /// Which of the three WMEM buffers holds the weight column (the 2-bit
    /// `w_sw` control).
    pub wmem: u8,
}

/// A (possibly multi-source) block mapped onto the DPU array, together with
/// its ConMerge vectors: per-slot control maps and per-lane conflict vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedBlock {
    height: usize,
    width: usize,
    slots: Vec<Option<Slot>>,
    cv: Vec<Option<usize>>,
    source_blocks: usize,
    relocations: usize,
}

impl MergedBlock {
    /// Maps a single block directly onto the array (WMEM buffer 0, all
    /// elements on their original rows).
    ///
    /// # Panics
    ///
    /// Panics if the block has more columns than the array width.
    pub fn from_block(block: &Block, width: usize) -> Self {
        assert!(
            block.width_used() <= width,
            "block width {} exceeds array width {width}",
            block.width_used()
        );
        let height = block.height();
        let mut slots = vec![None; height * width];
        for (j, col) in block.cols().iter().enumerate() {
            for r in 0..height {
                if col.mask >> r & 1 == 1 {
                    slots[r * width + j] = Some(Slot {
                        input_row: r,
                        weight_col: col.origin,
                        wmem: 0,
                    });
                }
            }
        }
        Self {
            height,
            width,
            slots,
            cv: vec![None; height],
            source_blocks: 1,
            relocations: 0,
        }
    }

    /// Tile height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Array width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of source blocks merged in (1–3).
    pub fn source_blocks(&self) -> usize {
        self.source_blocks
    }

    /// Number of conflict relocations performed.
    pub fn relocations(&self) -> usize {
        self.relocations
    }

    /// The slot at `(row, col)` of the array.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn slot(&self, r: usize, j: usize) -> Option<Slot> {
        assert!(
            r < self.height && j < self.width,
            "slot index out of bounds"
        );
        self.slots[r * self.width + j]
    }

    /// The per-lane conflict vectors.
    pub fn cv(&self) -> &[Option<usize>] {
        &self.cv
    }

    /// Number of occupied slots.
    pub fn occupied_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Occupied fraction of the array (what clock gating leaves idle).
    pub fn utilization(&self) -> f64 {
        self.occupied_slots() as f64 / (self.height * self.width) as f64
    }

    /// All `(input_row, weight_col)` pairs covered by this block — used to
    /// verify that merging loses and duplicates nothing.
    pub fn coverage(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .slots
            .iter()
            .flatten()
            .map(|s| (s.input_row, s.weight_col))
            .collect();
        v.sort_unstable();
        v
    }

    /// Attempts to merge `incoming` into this block using WMEM buffer `wmem`.
    ///
    /// On success returns the merged block and the CVG cycles spent; on
    /// failure returns the cycles wasted before the failure was detected.
    ///
    /// # Panics
    ///
    /// Panics if heights differ, the incoming block is wider than the array,
    /// or `wmem` is not 1 or 2 (buffer 0 belongs to the base block).
    pub fn try_merge(&self, incoming: &Block, wmem: u8) -> Result<(MergedBlock, u64), u64> {
        assert_eq!(incoming.height(), self.height, "tile height mismatch");
        assert!(
            incoming.width_used() <= self.width,
            "incoming block wider than array"
        );
        assert!(wmem == 1 || wmem == 2, "merge buffers are WMEM #1 and #2");

        // Cycle 1: build the bitmask map (Fig. 14's 2-bit cell codes).
        let mut cycles = 1u64;
        let mut next = self.clone();

        // Direct placements (code 01) and the conflict list (code 11).
        let mut conflicts: Vec<Vec<usize>> = vec![Vec::new(); self.width];
        for (j, col) in incoming.cols().iter().enumerate() {
            for r in 0..self.height {
                if col.mask >> r & 1 == 0 {
                    continue;
                }
                let idx = r * self.width + j;
                if next.slots[idx].is_none() {
                    next.slots[idx] = Some(Slot {
                        input_row: r,
                        weight_col: col.origin,
                        wmem,
                    });
                } else {
                    conflicts[j].push(r);
                }
            }
        }

        // Cycle 2: initial degree-of-freedom evaluation.
        cycles += 1;
        while conflicts.iter().any(|c| !c.is_empty()) {
            // Pick the column with the smallest DOF ("Comparator → Smallest
            // DOF"), hardest first.
            let mut best: Option<(i64, usize)> = None;
            for (j, pending) in conflicts.iter().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                let dof = self.column_dof(&next, j, pending);
                if best.map(|(d, _)| dof < d).unwrap_or(true) {
                    best = Some((dof, j));
                }
            }
            let (_, j) = best.expect("non-empty conflict set");

            // First conflict slot of the column, first compatible empty slot.
            let r = conflicts[j].remove(0);
            let target = (0..self.height).find(|&r2| {
                next.slots[r2 * self.width + j].is_none()
                    && (next.cv[r2].is_none() || next.cv[r2] == Some(r))
            });
            let Some(r2) = target else {
                return Err(cycles);
            };
            next.slots[r2 * self.width + j] = Some(Slot {
                input_row: r,
                weight_col: incoming.cols()[j].origin,
                wmem,
            });
            next.cv[r2] = Some(r);
            next.relocations += 1;
            cycles += 1; // one conflict-solving step
        }

        next.source_blocks += 1;
        Ok((next, cycles))
    }

    /// Degree of freedom of column `j` given its pending conflict rows:
    /// compatible empty slots minus pending conflicts (Fig. 14).
    fn column_dof(&self, state: &MergedBlock, j: usize, pending: &[usize]) -> i64 {
        let empties = (0..self.height)
            .filter(|&r2| {
                state.slots[r2 * self.width + j].is_none()
                    && (state.cv[r2].is_none() || pending.iter().any(|&r| state.cv[r2] == Some(r)))
            })
            .count() as i64;
        empties - pending.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(height: usize, cols: &[(usize, u64)]) -> Block {
        Block::new(
            height,
            cols.iter()
                .map(|&(origin, mask)| ColumnEntry { origin, mask })
                .collect(),
        )
    }

    #[test]
    fn from_block_places_bits_on_their_rows() {
        let b = block(4, &[(10, 0b0101), (20, 0b0010)]);
        let m = MergedBlock::from_block(&b, 3);
        assert_eq!(
            m.slot(0, 0),
            Some(Slot {
                input_row: 0,
                weight_col: 10,
                wmem: 0
            })
        );
        assert_eq!(m.slot(2, 0).unwrap().weight_col, 10);
        assert_eq!(m.slot(1, 1).unwrap().weight_col, 20);
        assert_eq!(m.slot(3, 2), None);
        assert_eq!(m.occupied_slots(), 3);
        assert_eq!(m.source_blocks(), 1);
    }

    #[test]
    fn disjoint_merge_needs_no_relocation() {
        let a = block(4, &[(0, 0b0011)]);
        let b = block(4, &[(1, 0b1100)]);
        let base = MergedBlock::from_block(&a, 1);
        let (merged, cycles) = base.try_merge(&b, 1).expect("disjoint merge succeeds");
        assert_eq!(merged.relocations(), 0);
        assert_eq!(merged.occupied_slots(), 4);
        assert_eq!(merged.source_blocks(), 2);
        assert_eq!(cycles, 2); // map + DOF, no conflict steps
        assert!(merged.cv().iter().all(|c| c.is_none()));
        assert_eq!(merged.slot(3, 0).unwrap().wmem, 1);
    }

    #[test]
    fn conflict_relocates_to_empty_row_and_sets_cv() {
        // Both blocks occupy row 0; rows 1–3 are free.
        let a = block(4, &[(0, 0b0001)]);
        let b = block(4, &[(1, 0b0001)]);
        let base = MergedBlock::from_block(&a, 1);
        let (merged, _) = base.try_merge(&b, 1).expect("relocatable conflict");
        assert_eq!(merged.relocations(), 1);
        // The incoming element moved to the first empty row (row 1) but still
        // reads input row 0 via the conflict line.
        let moved = merged.slot(1, 0).expect("relocated slot");
        assert_eq!(moved.input_row, 0);
        assert_eq!(moved.weight_col, 1);
        assert_eq!(merged.cv()[1], Some(0));
    }

    #[test]
    fn coverage_is_union_of_sources() {
        let a = block(8, &[(0, 0b0110_1001), (1, 0b0000_1111)]);
        let b = block(8, &[(2, 0b0110_1001), (3, 0b1111_0000)]);
        let base = MergedBlock::from_block(&a, 2);
        let (merged, _) = base.try_merge(&b, 1).expect("merge succeeds");
        let mut want: Vec<(usize, usize)> = Vec::new();
        for blk in [&a, &b] {
            for col in blk.cols() {
                for r in 0..8 {
                    if col.mask >> r & 1 == 1 {
                        want.push((r, col.origin));
                    }
                }
            }
        }
        want.sort_unstable();
        assert_eq!(merged.coverage(), want);
    }

    #[test]
    fn merge_fails_when_column_is_saturated() {
        let a = block(2, &[(0, 0b11)]);
        let b = block(2, &[(1, 0b01)]);
        let base = MergedBlock::from_block(&a, 1);
        let err = base.try_merge(&b, 1).expect_err("no free slot in column");
        assert!(err >= 2);
    }

    #[test]
    fn cv_slot_conflict_forces_alternate_row() {
        // Fig. 14 scenario: a CV slot already holds a different source row, so
        // a later conflict must pick another empty row.
        let a = block(4, &[(0, 0b0011), (1, 0b0001)]);
        // incoming column 0 conflicts at rows 0 and 1; incoming column 1
        // conflicts at row 0.
        let b = block(4, &[(2, 0b0011), (3, 0b0001)]);
        let base = MergedBlock::from_block(&a, 2);
        let (merged, _) = base.try_merge(&b, 1).expect("resolvable with two lanes");
        // Each lane's CV holds at most one source row, and every relocated
        // slot's input row matches its lane's CV.
        for r in 0..4 {
            for j in 0..2 {
                if let Some(s) = merged.slot(r, j) {
                    assert!(
                        s.input_row == r || merged.cv()[r] == Some(s.input_row),
                        "lane {r} slot input {} not covered by CV {:?}",
                        s.input_row,
                        merged.cv()[r]
                    );
                }
            }
        }
        assert_eq!(merged.relocations(), 3);
    }

    #[test]
    fn second_merge_uses_wmem_two() {
        let a = block(4, &[(0, 0b0001)]);
        let b = block(4, &[(1, 0b0010)]);
        let c = block(4, &[(2, 0b0100)]);
        let m0 = MergedBlock::from_block(&a, 1);
        let (m1, _) = m0.try_merge(&b, 1).expect("first merge");
        let (m2, _) = m1.try_merge(&c, 2).expect("second merge");
        assert_eq!(m2.source_blocks(), 3);
        assert_eq!(m2.slot(2, 0).unwrap().wmem, 2);
        assert!((m2.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "merge buffers")]
    fn rejects_buffer_zero_for_merging() {
        let a = block(2, &[(0, 0b01)]);
        let base = MergedBlock::from_block(&a, 1);
        let _ = base.try_merge(&a, 0);
    }

    #[test]
    fn relocated_elements_from_same_row_share_cv() {
        // Two conflicting columns, both at row 0: their relocations can share
        // lane 1's CV (both read input row 0).
        let a = block(2, &[(0, 0b01), (1, 0b01)]);
        let b = block(2, &[(2, 0b01), (3, 0b01)]);
        let base = MergedBlock::from_block(&a, 2);
        let (merged, _) = base.try_merge(&b, 1).expect("shared CV");
        assert_eq!(merged.cv()[1], Some(0));
        assert_eq!(merged.slot(1, 0).unwrap().input_row, 0);
        assert_eq!(merged.slot(1, 1).unwrap().input_row, 0);
    }
}
