//! Bit-level encoding of ConMerge vectors for the CVMEM (paper Figs. 11/13).
//!
//! The CAU stores, per merged block, everything the SDUE's switches need:
//!
//! * per DPU lane: the conflict vector — a 4-bit IMEM bank index plus a valid
//!   bit (`cv_sw` is a 16-to-1 mux);
//! * per DPU: a control map — 2-bit WMEM select (`w_sw`, 3-to-1) and 1-bit
//!   input-line select (`i_sw`, 2-to-1);
//! * per array column and WMEM buffer: the 10-bit original weight-column
//!   index ("Col. Origin Idx(10b)", Fig. 13).
//!
//! The encoding here packs those fields exactly, so the 50 kB CVMEM budget of
//! the paper's configuration can be checked against real schedules.

use serde::{Deserialize, Serialize};

use super::merge::MergedBlock;

/// Raised when a merged block cannot be represented in the hardware's field
/// widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeVectorsError {
    what: String,
}

impl std::fmt::Display for EncodeVectorsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot encode ConMerge vectors: {}", self.what)
    }
}

impl std::error::Error for EncodeVectorsError {}

/// Width of the weight-column origin index field (Fig. 13: 10 bits).
pub const COL_ORIGIN_BITS: u32 = 10;

/// Packed ConMerge vectors of one merged block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedVectors {
    height: usize,
    width: usize,
    /// Per lane: bit 4 = valid, bits 0..4 = source IMEM bank.
    cv: Vec<u8>,
    /// Per DPU (row-major): bit 2 = occupied, bit 1..2 = unused here,
    /// bits 0..2 = w_sw, bit 3 = i_sw (conflict line).
    cm: Vec<u8>,
    /// Per (buffer, column): 10-bit weight-column origin, `0x3FF` = unused.
    origins: Vec<u16>,
}

impl EncodedVectors {
    /// Packs a merged block's vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if a weight-column origin exceeds the 10-bit field,
    /// a CV bank index exceeds 4 bits, or more than three weight buffers
    /// would be needed.
    pub fn encode(block: &MergedBlock) -> Result<Self, EncodeVectorsError> {
        let height = block.height();
        let width = block.width();
        let mut cv = vec![0u8; height];
        for (lane, entry) in block.cv().iter().enumerate() {
            if let Some(src) = entry {
                if *src >= 16 {
                    return Err(EncodeVectorsError {
                        what: format!("CV source row {src} exceeds 4-bit bank index"),
                    });
                }
                cv[lane] = 0x10 | *src as u8;
            }
        }

        let unused = (1u16 << COL_ORIGIN_BITS) - 1;
        let mut origins = vec![unused; 3 * width];
        let mut cm = vec![0u8; height * width];
        for r in 0..height {
            for j in 0..width {
                let Some(slot) = block.slot(r, j) else {
                    continue;
                };
                if slot.wmem >= 3 {
                    return Err(EncodeVectorsError {
                        what: format!("WMEM buffer {} out of range", slot.wmem),
                    });
                }
                if slot.weight_col >= 1 << COL_ORIGIN_BITS {
                    return Err(EncodeVectorsError {
                        what: format!(
                            "weight column {} exceeds {COL_ORIGIN_BITS}-bit origin index",
                            slot.weight_col
                        ),
                    });
                }
                let origin_idx = slot.wmem as usize * width + j;
                let packed = slot.weight_col as u16;
                if origins[origin_idx] != unused && origins[origin_idx] != packed {
                    return Err(EncodeVectorsError {
                        what: format!(
                            "buffer {} column {j} holds two different origins",
                            slot.wmem
                        ),
                    });
                }
                origins[origin_idx] = packed;
                let conflict_line = slot.input_row != r;
                cm[r * width + j] = 0x4 | (slot.wmem & 0x3) | u8::from(conflict_line) << 3;
            }
        }
        Ok(Self {
            height,
            width,
            cv,
            cm,
            origins,
        })
    }

    /// Occupied DPU at `(r, j)`?
    pub fn occupied(&self, r: usize, j: usize) -> bool {
        self.cm[r * self.width + j] & 0x4 != 0
    }

    /// The `w_sw` selection at `(r, j)`.
    pub fn w_sw(&self, r: usize, j: usize) -> u8 {
        self.cm[r * self.width + j] & 0x3
    }

    /// The `i_sw` selection at `(r, j)` (true = conflict line).
    pub fn i_sw_conflict(&self, r: usize, j: usize) -> bool {
        self.cm[r * self.width + j] & 0x8 != 0
    }

    /// The conflict vector of `lane`.
    pub fn cv_source(&self, lane: usize) -> Option<usize> {
        let v = self.cv[lane];
        if v & 0x10 != 0 {
            Some((v & 0xF) as usize)
        } else {
            None
        }
    }

    /// The weight-column origin broadcast to array column `j` from `buffer`.
    pub fn origin(&self, buffer: u8, j: usize) -> Option<usize> {
        let v = self.origins[buffer as usize * self.width + j];
        if v == (1 << COL_ORIGIN_BITS) - 1 {
            None
        } else {
            Some(v as usize)
        }
    }

    /// Storage footprint in CVMEM bits: 5 bits per lane CV, 4 bits per DPU
    /// CM, 10 bits per (buffer, column) origin.
    pub fn bits(&self) -> usize {
        5 * self.height + 4 * self.height * self.width + COL_ORIGIN_BITS as usize * 3 * self.width
    }

    /// Storage footprint in bytes (bit-packed, rounded up).
    pub fn bytes(&self) -> usize {
        self.bits().div_ceil(8)
    }
}

/// How many merged blocks' vectors fit a CVMEM of `cvmem_bytes` (the paper's
/// configuration: 50 kB).
pub fn blocks_per_cvmem(cvmem_bytes: usize, height: usize, width: usize) -> usize {
    let per_block_bits = 5 * height + 4 * height * width + COL_ORIGIN_BITS as usize * 3 * width;
    (cvmem_bytes * 8) / per_block_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conmerge::merge::{Block, ColumnEntry};

    fn merged_pair() -> MergedBlock {
        let a = Block::new(
            4,
            vec![
                ColumnEntry {
                    origin: 7,
                    mask: 0b0011,
                },
                ColumnEntry {
                    origin: 9,
                    mask: 0b0001,
                },
            ],
        );
        let b = Block::new(
            4,
            vec![
                ColumnEntry {
                    origin: 20,
                    mask: 0b0001,
                }, // conflicts at row 0
                ColumnEntry {
                    origin: 21,
                    mask: 0b0110,
                },
            ],
        );
        let base = MergedBlock::from_block(&a, 2);
        base.try_merge(&b, 1).expect("merge succeeds").0
    }

    #[test]
    fn round_trip_matches_block() {
        let block = merged_pair();
        let enc = EncodedVectors::encode(&block).expect("encodes");
        for r in 0..block.height() {
            assert_eq!(enc.cv_source(r), block.cv()[r], "lane {r} CV");
            for j in 0..block.width() {
                match block.slot(r, j) {
                    Some(slot) => {
                        assert!(enc.occupied(r, j));
                        assert_eq!(enc.w_sw(r, j), slot.wmem);
                        assert_eq!(enc.i_sw_conflict(r, j), slot.input_row != r);
                        assert_eq!(
                            enc.origin(slot.wmem, j),
                            Some(slot.weight_col),
                            "origin at buffer {} col {j}",
                            slot.wmem
                        );
                    }
                    None => assert!(!enc.occupied(r, j)),
                }
            }
        }
    }

    #[test]
    fn footprint_matches_field_widths() {
        let block = merged_pair();
        let enc = EncodedVectors::encode(&block).expect("encodes");
        // 4 lanes × 5 + 8 DPUs × 4 + 3 buffers × 2 cols × 10 = 112 bits.
        assert_eq!(enc.bits(), 112);
        assert_eq!(enc.bytes(), 14);
    }

    #[test]
    fn exion_cvmem_holds_many_blocks() {
        // 16×16 array: 5·16 + 4·256 + 10·48 = 1584 bits ≈ 198 B per block;
        // the 50 kB CVMEM holds ~258 of them — far more than the double-
        // buffered schedule depth needs.
        let capacity = blocks_per_cvmem(50 * 1024, 16, 16);
        assert!(capacity > 250, "capacity {capacity}");
    }

    #[test]
    fn oversized_origin_rejected() {
        let a = Block::new(
            2,
            vec![ColumnEntry {
                origin: 1 << 10,
                mask: 0b01,
            }],
        );
        let m = MergedBlock::from_block(&a, 1);
        let err = EncodedVectors::encode(&m).expect_err("origin too wide");
        assert!(err.to_string().contains("10-bit"));
    }

    #[test]
    fn relocated_slots_encode_conflict_line() {
        let block = merged_pair();
        let enc = EncodedVectors::encode(&block).expect("encodes");
        let mut conflict_slots = 0;
        for r in 0..block.height() {
            for j in 0..block.width() {
                if enc.occupied(r, j) && enc.i_sw_conflict(r, j) {
                    conflict_slots += 1;
                    // A conflict-line slot requires a valid CV on its lane.
                    assert!(enc.cv_source(r).is_some());
                }
            }
        }
        assert_eq!(conflict_slots, block.relocations());
    }
}
