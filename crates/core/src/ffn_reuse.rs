//! The FFN-Reuse algorithm (paper Section III-A, Fig. 6).
//!
//! Diffusion models denoise over many iterations, and the output of the
//! non-linearity between the two FFN linear layers changes very little from
//! one iteration to the next (Fig. 7). FFN-Reuse exploits this *temporal data
//! redundancy*:
//!
//! 1. A **dense iteration** computes both FFN layers fully, compares the
//!    activation output against a threshold, and stores
//!    * a *bitmask* (1 = above threshold ⇒ recompute every iteration,
//!      0 = below threshold ⇒ reuse),
//!    * the activation values themselves, and
//!    * the *partial sums of sparse data*: the second layer's contribution of
//!      all reused activation values.
//! 2. The following **N sparse iterations** recompute only bitmask-1 positions
//!    in the first layer (the rest of that layer's output is never produced —
//!    this is the *inter-iteration output sparsity*), and the second layer
//!    adds only the recomputed values onto the stored partial sums.
//!
//! The thresholds "vary across iterations and transformer blocks" and are
//! "determined through empirical experiments" — [`calibrate_threshold`]
//! implements that calibration as a quantile of the dense activation
//! magnitudes.

use exion_tensor::{ops, Activation, Matrix};
use serde::{Deserialize, Serialize};

use crate::bitmask::Bitmask2D;
use crate::sparsity::OpCounts;

/// Weights of one transformer FFN (two linear layers around a non-linearity).
#[derive(Debug, Clone, PartialEq)]
pub struct FfnWeights {
    /// First linear layer, `d_model × d_ff`.
    pub w1: Matrix,
    /// First-layer bias, length `d_ff`.
    pub b1: Vec<f32>,
    /// Second linear layer, `act.output_cols(d_ff) × d_model`.
    pub w2: Matrix,
    /// Second-layer bias, length `d_model`.
    pub b2: Vec<f32>,
    /// Non-linearity between the layers.
    pub activation: Activation,
}

impl FfnWeights {
    /// Creates Xavier-initialized FFN weights.
    ///
    /// For [`Activation::Geglu`], `d_ff` is the first layer's output width and
    /// the activation output (and second layer input) has `d_ff / 2` features.
    ///
    /// # Panics
    ///
    /// Panics if `Geglu` is requested with an odd `d_ff`.
    pub fn random(d_model: usize, d_ff: usize, activation: Activation, seed: u64) -> Self {
        assert!(
            activation != Activation::Geglu || d_ff.is_multiple_of(2),
            "GEGLU requires an even d_ff"
        );
        let hidden_out = activation.output_cols(d_ff);
        // Normalize first-layer column norms: trained networks keep hidden
        // channels at comparable scales (normalization layers see to it).
        // Raw Xavier columns vary in norm, which would create artificial
        // whole-column sparsity under a global threshold and distort the
        // condensing behaviour the paper measures (Fig. 8).
        let mut w1 = exion_tensor::rng::xavier_uniform(d_model, d_ff, seed);
        let norms: Vec<f32> = (0..d_ff)
            .map(|c| w1.col(c).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        let mean_norm = norms.iter().sum::<f32>() / d_ff.max(1) as f32;
        for r in 0..d_model {
            let row = w1.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                if norms[c] > 0.0 {
                    *v *= mean_norm / norms[c];
                }
            }
        }
        Self {
            w1,
            b1: vec![0.0; d_ff],
            w2: exion_tensor::rng::xavier_uniform(hidden_out, d_model, seed.wrapping_add(1)),
            b2: vec![0.0; d_model],
            activation,
        }
    }

    /// Model width (`d_model`).
    pub fn d_model(&self) -> usize {
        self.w1.rows()
    }

    /// First-layer output width (`d_ff`).
    pub fn d_ff(&self) -> usize {
        self.w1.cols()
    }

    /// Width of the activation output / second-layer input.
    pub fn hidden_cols(&self) -> usize {
        self.activation.output_cols(self.d_ff())
    }

    /// Full (dense) activation output `act(x·w1 + b1)`.
    pub fn hidden_dense(&self, x: &Matrix) -> Matrix {
        self.activation.apply(&ops::linear(x, &self.w1, &self.b1))
    }

    /// Full (dense) FFN forward pass.
    pub fn forward_dense(&self, x: &Matrix) -> Matrix {
        ops::add_bias(&ops::matmul(&self.hidden_dense(x), &self.w2), &self.b2)
    }

    /// Recomputes the activation output at a single `(row, col)` position of
    /// the hidden matrix (col indexes the *activation output*).
    fn hidden_at(&self, x: &Matrix, r: usize, c: usize) -> f32 {
        match self.activation {
            Activation::Geglu => {
                let half = self.d_ff() / 2;
                let left = ops::dot(x.row(r), &self.w1.col(c)) + self.b1[c];
                let right = ops::dot(x.row(r), &self.w1.col(half + c)) + self.b1[half + c];
                exion_tensor::activation::gelu(left) * right
            }
            act => {
                let pre = ops::dot(x.row(r), &self.w1.col(c)) + self.b1[c];
                act.apply(&Matrix::from_vec(1, 1, vec![pre]))[(0, 0)]
            }
        }
    }

    /// MACs one hidden element costs to recompute.
    fn macs_per_hidden_element(&self) -> u64 {
        let per_col = self.d_model() as u64;
        match self.activation {
            Activation::Geglu => 2 * per_col,
            _ => per_col,
        }
    }
}

/// Configuration of the FFN-Reuse schedule for one FFN layer pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FfnReuseConfig {
    /// Bitmask threshold: activation magnitudes above it are recomputed every
    /// iteration; values at or below it are reused. When `target_sparsity` is
    /// set, this is recalibrated at every dense iteration.
    pub threshold: f32,
    /// Number of sparse iterations between two dense iterations (the paper's
    /// per-model `N`, Fig. 6: 2–9).
    pub sparse_iters: usize,
    /// When set, each dense iteration recalibrates the threshold to this
    /// bitmask sparsity — the paper's per-block, per-iteration-group empirical
    /// threshold selection.
    pub target_sparsity: Option<f64>,
}

impl FfnReuseConfig {
    /// Creates a fixed-threshold config.
    pub fn new(threshold: f32, sparse_iters: usize) -> Self {
        Self {
            threshold,
            sparse_iters,
            target_sparsity: None,
        }
    }

    /// Creates a config that recalibrates its threshold at every dense
    /// iteration to hit `target_sparsity` (the paper's Fig. 6 per-model
    /// sparsity levels, 70–97%).
    ///
    /// # Panics
    ///
    /// Panics if `target_sparsity` is outside `[0, 1]`.
    pub fn with_target_sparsity(target_sparsity: f64, sparse_iters: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_sparsity),
            "target sparsity {target_sparsity} outside [0, 1]"
        );
        Self {
            threshold: 0.0,
            sparse_iters,
            target_sparsity: Some(target_sparsity),
        }
    }
}

impl Default for FfnReuseConfig {
    fn default() -> Self {
        Self {
            threshold: 0.1,
            sparse_iters: 4,
            target_sparsity: None,
        }
    }
}

/// Picks the threshold whose bitmask hits a target sparsity on a dense
/// activation output — the paper's "determined through empirical experiments"
/// calibration.
///
/// Returns the `target_sparsity` quantile of the absolute activation values.
///
/// # Panics
///
/// Panics if `h` is empty or `target_sparsity` is outside `[0, 1]`.
pub fn calibrate_threshold(h: &Matrix, target_sparsity: f64) -> f32 {
    assert!(!h.is_empty(), "cannot calibrate on an empty activation");
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "target sparsity {target_sparsity} outside [0, 1]"
    );
    let mut mags: Vec<f32> = h.as_slice().iter().map(|x| x.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("activation magnitudes are not NaN"));
    let idx = ((mags.len() as f64 * target_sparsity) as usize).min(mags.len() - 1);
    mags[idx]
}

/// Whether an iteration ran dense or sparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterationKind {
    /// Full computation; bitmask and partial sums are (re)generated.
    Dense,
    /// Bitmask-guided partial computation reusing the dense iteration's data.
    Sparse,
}

/// Per-iteration report of the reuse engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FfnIterationReport {
    /// Dense or sparse iteration.
    pub kind: IterationKind,
    /// Output sparsity of the first FFN layer this iteration (0.0 for dense
    /// iterations; for sparse iterations this is the paper's *inter-iteration
    /// output sparsity*, the fraction of hidden elements never computed).
    pub output_sparsity: f64,
    /// MACs performed vs. a dense execution of both FFN layers.
    pub ops: OpCounts,
}

/// State captured by a dense iteration and consumed by sparse iterations.
#[derive(Debug, Clone)]
struct DenseState {
    /// Full activation output of the dense iteration.
    hidden: Matrix,
    /// 1 = recompute every iteration, 0 = reuse.
    bitmask: Bitmask2D,
    /// Second-layer contribution of all reused (bit = 0) activations,
    /// including the output bias.
    reuse_partial: Matrix,
}

/// Stateful FFN-Reuse executor for one FFN layer pair.
///
/// Call [`FfnReuseEngine::forward`] once per diffusion iteration; the engine
/// runs the dense/sparse schedule (`1` dense followed by `N` sparse,
/// repeating) automatically.
///
/// # Examples
///
/// ```
/// use exion_core::{FfnReuseConfig, FfnReuseEngine, FfnWeights};
/// use exion_tensor::{rng, Activation};
///
/// let w = FfnWeights::random(8, 32, Activation::Gelu, 1);
/// let x = rng::seeded_uniform(4, 8, -1.0, 1.0, 2);
/// let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.05, 3));
/// let (y_dense, r0) = engine.forward(&x, &w);
/// let (y_sparse, r1) = engine.forward(&x, &w);
/// assert_eq!(y_dense.shape(), y_sparse.shape());
/// assert!(r1.ops.performed < r0.ops.performed);
/// ```
#[derive(Debug, Clone)]
pub struct FfnReuseEngine {
    config: FfnReuseConfig,
    state: Option<DenseState>,
    iterations_since_dense: usize,
}

impl FfnReuseEngine {
    /// Creates an engine; the first `forward` call runs dense.
    pub fn new(config: FfnReuseConfig) -> Self {
        Self {
            config,
            state: None,
            iterations_since_dense: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> FfnReuseConfig {
        self.config
    }

    /// Replaces the threshold (e.g. per-iteration-group calibration) without
    /// disturbing the schedule.
    pub fn set_threshold(&mut self, threshold: f32) {
        self.config.threshold = threshold;
    }

    /// The current bitmask, if a dense iteration has run.
    pub fn bitmask(&self) -> Option<&Bitmask2D> {
        self.state.as_ref().map(|s| &s.bitmask)
    }

    /// Forces the next iteration to run dense.
    pub fn reset(&mut self) {
        self.state = None;
        self.iterations_since_dense = 0;
    }

    /// Whether the next `forward` call will run dense.
    pub fn next_is_dense(&self) -> bool {
        self.state.is_none() || self.iterations_since_dense >= self.config.sparse_iters
    }

    /// Runs one diffusion iteration of the FFN pair on input `x`
    /// (`tokens × d_model`).
    ///
    /// # Panics
    ///
    /// Panics if `x`'s width differs from the weights' `d_model`, or if the
    /// token count changes between a dense iteration and its sparse followers.
    pub fn forward(&mut self, x: &Matrix, w: &FfnWeights) -> (Matrix, FfnIterationReport) {
        assert_eq!(x.cols(), w.d_model(), "input width must equal d_model");
        if self.next_is_dense() {
            self.forward_dense(x, w)
        } else {
            self.forward_sparse(x, w)
        }
    }

    /// Dense MAC baseline for both layers on a `rows`-token input.
    fn dense_macs(rows: usize, w: &FfnWeights) -> u64 {
        let l1 = rows as u64 * w.d_ff() as u64 * w.d_model() as u64;
        let l2 = rows as u64 * w.hidden_cols() as u64 * w.d_model() as u64;
        l1 + l2
    }

    fn forward_dense(&mut self, x: &Matrix, w: &FfnWeights) -> (Matrix, FfnIterationReport) {
        let hidden = w.hidden_dense(x);
        if let Some(target) = self.config.target_sparsity {
            self.config.threshold = calibrate_threshold(&hidden, target);
        }
        let bitmask = Bitmask2D::from_threshold(&hidden, self.config.threshold);

        // Split the second layer's accumulation into reuse / recompute parts.
        // The hardware produces both in the same pass (one accumulator group
        // per class), so this costs exactly the dense MAC count.
        let hidden_reused = Matrix::from_fn(hidden.rows(), hidden.cols(), |r, c| {
            if bitmask.get(r, c) {
                0.0
            } else {
                hidden[(r, c)]
            }
        });
        let reuse_partial = ops::add_bias(&ops::matmul(&hidden_reused, &w.w2), &w.b2);
        let hidden_recomputed = ops::sub(&hidden, &hidden_reused);
        let y = ops::add(&reuse_partial, &ops::matmul(&hidden_recomputed, &w.w2));

        self.state = Some(DenseState {
            hidden,
            bitmask,
            reuse_partial,
        });
        self.iterations_since_dense = 0;

        let dense = Self::dense_macs(x.rows(), w);
        let report = FfnIterationReport {
            kind: IterationKind::Dense,
            output_sparsity: 0.0,
            ops: OpCounts::new(dense, dense),
        };
        (y, report)
    }

    fn forward_sparse(&mut self, x: &Matrix, w: &FfnWeights) -> (Matrix, FfnIterationReport) {
        let state = self
            .state
            .as_ref()
            .expect("sparse iteration requires dense state");
        assert_eq!(
            x.rows(),
            state.hidden.rows(),
            "token count changed between dense and sparse iterations"
        );
        let bitmask = &state.bitmask;
        let recompute_count = bitmask.count_ones() as u64;

        // First layer: only bitmask-1 positions are produced at all.
        // Second layer: their contributions are accumulated onto the stored
        // partial sums ("Add Output to Partial Sums Only When Bitmask Bit is
        // 1", Fig. 6).
        let mut y = state.reuse_partial.clone();
        for (r, c) in bitmask.iter_ones() {
            let h = w.hidden_at(x, r, c);
            let w2_row = w.w2.row(c);
            let y_row = y.row_mut(r);
            for (yv, &wv) in y_row.iter_mut().zip(w2_row) {
                *yv += h * wv;
            }
        }

        self.iterations_since_dense += 1;

        let dense = Self::dense_macs(x.rows(), w);
        let performed = recompute_count * (w.macs_per_hidden_element() + w.d_model() as u64);
        let report = FfnIterationReport {
            kind: IterationKind::Sparse,
            output_sparsity: bitmask.sparsity(),
            ops: OpCounts::new(performed, dense),
        };
        (y, report)
    }
}

/// Aggregates iteration reports over a full diffusion run into the paper's
/// Fig. 6 table quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FfnReuseSummary {
    /// Number of dense iterations.
    pub dense_iterations: usize,
    /// Number of sparse iterations.
    pub sparse_iterations: usize,
    /// Mean first-layer output sparsity over sparse iterations.
    pub mean_output_sparsity: f64,
    /// Total MACs performed vs. dense baseline across all iterations.
    pub ops: OpCounts,
}

impl FfnReuseSummary {
    /// Builds a summary from per-iteration reports.
    pub fn from_reports(reports: &[FfnIterationReport]) -> Self {
        let mut s = Self::default();
        let mut sparsity_sum = 0.0;
        for r in reports {
            match r.kind {
                IterationKind::Dense => s.dense_iterations += 1,
                IterationKind::Sparse => {
                    s.sparse_iterations += 1;
                    sparsity_sum += r.output_sparsity;
                }
            }
            s.ops = s.ops.merge(&r.ops);
        }
        if s.sparse_iterations > 0 {
            s.mean_output_sparsity = sparsity_sum / s.sparse_iterations as f64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_tensor::rng::seeded_uniform;
    use exion_tensor::stats;

    fn setup(seed: u64) -> (FfnWeights, Matrix) {
        let w = FfnWeights::random(16, 64, Activation::Gelu, seed);
        let x = seeded_uniform(8, 16, -1.0, 1.0, seed + 100);
        (w, x)
    }

    #[test]
    fn dense_iteration_matches_plain_forward() {
        let (w, x) = setup(1);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.1, 2));
        let (y, report) = engine.forward(&x, &w);
        let reference = w.forward_dense(&x);
        assert!(stats::relative_error(&reference, &y) < 1e-5);
        assert_eq!(report.kind, IterationKind::Dense);
        assert_eq!(report.ops.reduction(), 0.0);
    }

    #[test]
    fn sparse_iteration_with_same_input_is_exact_at_zero_threshold() {
        let (w, x) = setup(2);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.0, 2));
        let (y_dense, _) = engine.forward(&x, &w);
        let (y_sparse, report) = engine.forward(&x, &w);
        assert_eq!(report.kind, IterationKind::Sparse);
        // Threshold 0 ⇒ everything recomputed ⇒ identical output.
        assert!(stats::relative_error(&y_dense, &y_sparse) < 1e-5);
    }

    #[test]
    fn infinite_threshold_reuses_everything() {
        let (w, x) = setup(3);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(f32::INFINITY, 2));
        let (y_dense, _) = engine.forward(&x, &w);
        let x2 = seeded_uniform(8, 16, -1.0, 1.0, 999);
        let (y_sparse, report) = engine.forward(&x2, &w);
        // Everything reused: output equals the dense output regardless of x2,
        // and no MACs were performed.
        assert!(stats::relative_error(&y_dense, &y_sparse) < 1e-6);
        assert_eq!(report.ops.performed, 0);
        assert!((report.output_sparsity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_iteration_approximates_full_recompute_for_similar_inputs() {
        let (w, x) = setup(4);
        let hidden = w.hidden_dense(&x);
        let threshold = calibrate_threshold(&hidden, 0.9);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(threshold, 4));
        let (_, _) = engine.forward(&x, &w);
        // Small perturbation, like adjacent diffusion iterations.
        let x2 = x.map(|v| v + 0.01);
        let (y_sparse, report) = engine.forward(&x2, &w);
        let y_exact = w.forward_dense(&x2);
        assert!(
            report.ops.reduction() > 0.5,
            "reduction {}",
            report.ops.reduction()
        );
        assert!(
            stats::relative_error(&y_exact, &y_sparse) < 0.05,
            "error {}",
            stats::relative_error(&y_exact, &y_sparse)
        );
    }

    #[test]
    fn schedule_runs_one_dense_then_n_sparse() {
        let (w, x) = setup(5);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.1, 3));
        let mut kinds = Vec::new();
        for _ in 0..9 {
            let (_, r) = engine.forward(&x, &w);
            kinds.push(r.kind);
        }
        use IterationKind::{Dense, Sparse};
        assert_eq!(
            kinds,
            vec![Dense, Sparse, Sparse, Sparse, Dense, Sparse, Sparse, Sparse, Dense]
        );
    }

    #[test]
    fn calibrated_threshold_hits_target_sparsity() {
        let (w, x) = setup(6);
        let hidden = w.hidden_dense(&x);
        for target in [0.5, 0.8, 0.95] {
            let th = calibrate_threshold(&hidden, target);
            let mask = Bitmask2D::from_threshold(&hidden, th);
            assert!(
                (mask.sparsity() - target).abs() < 0.05,
                "target {target} got {}",
                mask.sparsity()
            );
        }
    }

    #[test]
    fn geglu_reuse_is_consistent() {
        let w = FfnWeights::random(16, 64, Activation::Geglu, 7);
        assert_eq!(w.hidden_cols(), 32);
        let x = seeded_uniform(4, 16, -1.0, 1.0, 70);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.0, 1));
        let (y_dense, _) = engine.forward(&x, &w);
        let (y_sparse, _) = engine.forward(&x, &w);
        assert!(stats::relative_error(&y_dense, &y_sparse) < 1e-5);
        assert!(stats::relative_error(&w.forward_dense(&x), &y_dense) < 1e-5);
    }

    #[test]
    fn reset_forces_dense() {
        let (w, x) = setup(8);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.1, 5));
        let _ = engine.forward(&x, &w);
        assert!(!engine.next_is_dense());
        engine.reset();
        assert!(engine.next_is_dense());
    }

    #[test]
    fn summary_aggregates_reports() {
        let (w, x) = setup(9);
        let hidden = w.hidden_dense(&x);
        let th = calibrate_threshold(&hidden, 0.9);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(th, 4));
        let mut reports = Vec::new();
        for _ in 0..10 {
            let (_, r) = engine.forward(&x, &w);
            reports.push(r);
        }
        let s = FfnReuseSummary::from_reports(&reports);
        assert_eq!(s.dense_iterations, 2);
        assert_eq!(s.sparse_iterations, 8);
        assert!(s.mean_output_sparsity > 0.8);
        // Paper Fig. 6: 52–85% FFN op reduction with N=2..9 and 70–97% sparsity.
        assert!(
            s.ops.reduction() > 0.5,
            "total reduction {}",
            s.ops.reduction()
        );
    }

    #[test]
    fn target_sparsity_recalibrates_each_dense_iteration() {
        let (w, x) = setup(11);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::with_target_sparsity(0.9, 1));
        let (_, _) = engine.forward(&x, &w);
        let mask_sparsity = engine.bitmask().expect("dense state").sparsity();
        assert!((mask_sparsity - 0.9).abs() < 0.05, "got {mask_sparsity}");
        // Next dense iteration on a very different input recalibrates.
        let (_, _) = engine.forward(&x, &w);
        let x2 = seeded_uniform(8, 16, -5.0, 5.0, 77);
        let (_, r) = engine.forward(&x2, &w);
        assert_eq!(r.kind, IterationKind::Dense);
        let s2 = engine.bitmask().expect("dense state").sparsity();
        assert!((s2 - 0.9).abs() < 0.05, "got {s2}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn target_sparsity_validated() {
        let _ = FfnReuseConfig::with_target_sparsity(1.5, 2);
    }

    #[test]
    #[should_panic(expected = "token count changed")]
    fn sparse_iteration_rejects_shape_change() {
        let (w, x) = setup(10);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.1, 2));
        let _ = engine.forward(&x, &w);
        let bad = seeded_uniform(9, 16, -1.0, 1.0, 1);
        let _ = engine.forward(&bad, &w);
    }
}
