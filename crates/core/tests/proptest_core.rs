//! Property-based tests of the EXION algorithms' invariants.

use exion_core::bitmask::Bitmask2D;
use exion_core::ep::{log_dot, AccumMode, AttentionPlan, EpConfig, LodMode, LogOperand};
use exion_core::ffn_reuse::{calibrate_threshold, FfnReuseConfig, FfnReuseEngine, FfnWeights};
use exion_tensor::rng::seeded_uniform;
use exion_tensor::{Activation, IntWidth, QuantMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bitmask threshold is exactly the |value| > threshold predicate.
    #[test]
    fn bitmask_threshold_semantics(seed in 0u64..1000, th in 0.0f32..1.0) {
        let m = seeded_uniform(6, 40, -2.0, 2.0, seed);
        let mask = Bitmask2D::from_threshold(&m, th);
        for r in 0..6 {
            for c in 0..40 {
                prop_assert_eq!(mask.get(r, c), m[(r, c)].abs() > th);
            }
        }
    }

    /// Calibrated thresholds hit their sparsity target within quantile
    /// granularity.
    #[test]
    fn calibration_hits_target(seed in 0u64..1000, target in 0.1f64..0.95) {
        let w = FfnWeights::random(16, 64, Activation::Gelu, seed);
        let x = seeded_uniform(8, 16, -1.0, 1.0, seed + 1);
        let h = w.hidden_dense(&x);
        let th = calibrate_threshold(&h, target);
        let got = Bitmask2D::from_threshold(&h, th).sparsity();
        prop_assert!((got - target).abs() < 0.05, "target {target} got {got}");
    }

    /// A sparse iteration on the *same* input with threshold 0 reproduces the
    /// dense output (nothing below threshold changed).
    #[test]
    fn zero_threshold_sparse_iteration_is_exact(seed in 0u64..500) {
        let w = FfnWeights::random(12, 48, Activation::Gelu, seed);
        let x = seeded_uniform(6, 12, -1.0, 1.0, seed + 1);
        let mut engine = FfnReuseEngine::new(FfnReuseConfig::new(0.0, 3));
        let (dense, _) = engine.forward(&x, &w);
        let (sparse, _) = engine.forward(&x, &w);
        prop_assert!(exion_tensor::stats::relative_error(&dense, &sparse) < 1e-4);
    }

    /// Sparse-iteration MAC counts match the bitmask population exactly.
    #[test]
    fn sparse_ops_match_bitmask(seed in 0u64..500, target in 0.5f64..0.99) {
        let w = FfnWeights::random(12, 48, Activation::Gelu, seed);
        let x = seeded_uniform(6, 12, -1.0, 1.0, seed + 1);
        let mut engine =
            FfnReuseEngine::new(FfnReuseConfig::with_target_sparsity(target, 2));
        let _ = engine.forward(&x, &w);
        let ones = engine.bitmask().unwrap().count_ones() as u64;
        let (_, report) = engine.forward(&x, &w);
        // FFN-1 recompute + FFN-2 accumulate, both d_model wide per element.
        prop_assert_eq!(report.ops.performed, ones * (12 + 12));
    }

    /// TS-LOD operand approximation error is at most single LOD's, for every
    /// representable INT12 value.
    #[test]
    fn tslod_dominates_lod_per_operand(x in -2047i32..2048) {
        let single = LogOperand::from_int(x, LodMode::Single).approx_value();
        let two = LogOperand::from_int(x, LodMode::TwoStep).approx_value();
        prop_assert!((x as i64 - two).abs() <= (x as i64 - single).abs());
    }

    /// Log-domain dot products always underestimate-or-match the sign
    /// structure: exact accumulation of TS-LOD terms is within the bound
    /// implied by per-operand truncation (each operand keeps ≥ 2/3 of its
    /// magnitude, so products keep ≥ 4/9).
    #[test]
    fn log_dot_bounded_truncation(seed in 0u64..500) {
        let a = QuantMatrix::quantize(
            &seeded_uniform(1, 32, -1.0, 1.0, seed), IntWidth::Int12);
        let b = QuantMatrix::quantize(
            &seeded_uniform(1, 32, -1.0, 1.0, seed + 1), IntWidth::Int12);
        let exact: i64 = a.row(0).iter().zip(b.row(0))
            .map(|(&x, &y)| x as i64 * y as i64).sum();
        let pred = log_dot(a.row(0), b.row(0), LodMode::TwoStep, AccumMode::Exact);
        // Per-term bounds don't transfer to signed sums exactly, but the
        // deviation is bounded by the total truncated magnitude (≤ 5/9 of
        // the absolute mass).
        let mass: i64 = a.row(0).iter().zip(b.row(0))
            .map(|(&x, &y)| (x as i64 * y as i64).abs()).sum();
        prop_assert!((pred - exact).abs() <= mass * 5 / 9 + 1);
    }

    /// Attention plans always cover their one-hot targets in col_used, and
    /// keep counts never exceed the top-k budget.
    #[test]
    fn attention_plan_invariants(
        seed in 0u64..500, tokens in 2usize..20, k in 0.05f32..1.0
    ) {
        let q = QuantMatrix::quantize(
            &seeded_uniform(tokens, 8, -1.0, 1.0, seed), IntWidth::Int12);
        let kk = QuantMatrix::quantize(
            &seeded_uniform(tokens, 8, -1.0, 1.0, seed + 1), IntWidth::Int12);
        let plan = AttentionPlan::predict(&q, &kk, 1e-4, &EpConfig::new(0.5, k));
        let budget = ((tokens as f64 * k as f64) - 1e-6).ceil().max(1.0) as usize;
        for r in 0..tokens {
            let kept = plan.keep().row_count_ones(r);
            if let Some(c) = plan.one_hot()[r] {
                prop_assert_eq!(kept, 0, "one-hot rows keep nothing");
                prop_assert!(plan.col_used()[c]);
            } else {
                prop_assert!(kept <= budget, "kept {kept} budget {budget}");
            }
        }
        for (_, c) in plan.keep().iter_ones() {
            prop_assert!(plan.col_used()[c]);
        }
    }

    /// Bitmask OR/AND obey containment: AND ⊆ each ⊆ OR.
    #[test]
    fn bitmask_lattice(seed in 0u64..500) {
        let a = Bitmask2D::from_fn(8, 20, |r, c| (r * 7 + c).wrapping_mul(seed as usize + 1) % 3 == 0);
        let b = Bitmask2D::from_fn(8, 20, |r, c| (r * 5 + c).wrapping_mul(seed as usize + 2) % 4 == 0);
        let and = a.and(&b);
        let or = a.or(&b);
        for r in 0..8 {
            for c in 0..20 {
                prop_assert!(!and.get(r, c) || a.get(r, c));
                prop_assert!(!a.get(r, c) || or.get(r, c));
            }
        }
        prop_assert_eq!(
            and.count_ones() + or.count_ones(),
            a.count_ones() + b.count_ones()
        );
    }
}
