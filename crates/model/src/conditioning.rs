//! Conditioning-network stand-in.
//!
//! The paper uses CLIP/CLAP to turn text, class labels, or music into
//! embedding tokens which are "executed once" and then injected into every
//! denoising step. The pre-trained encoders are unavailable, so this module
//! provides a deterministic surrogate: the prompt is hashed to a seed, the
//! seed generates a stable embedding matrix. This preserves exactly what the
//! accelerator experiments need — a fixed conditioning tensor of the right
//! shape whose content varies with the prompt.

use exion_tensor::rng::seeded_normal;
use exion_tensor::Matrix;

/// FNV-1a hash of a prompt, used as the embedding seed.
fn prompt_seed(prompt: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prompt.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic CLIP/CLAP-like conditioning encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditioningEncoder {
    tokens: usize,
    d_model: usize,
}

impl ConditioningEncoder {
    /// Creates an encoder producing `tokens × d_model` embeddings.
    pub fn new(tokens: usize, d_model: usize) -> Self {
        Self { tokens, d_model }
    }

    /// Encodes a prompt into a stable embedding matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use exion_model::conditioning::ConditioningEncoder;
    /// let enc = ConditioningEncoder::new(4, 8);
    /// let a = enc.encode("a corgi surfing");
    /// assert_eq!(a.shape(), (4, 8));
    /// assert_eq!(a, enc.encode("a corgi surfing"));
    /// ```
    pub fn encode(&self, prompt: &str) -> Matrix {
        seeded_normal(self.tokens, self.d_model, 1.0, prompt_seed(prompt))
    }

    /// Mean-pooled single-vector embedding (for additive conditioning).
    pub fn encode_pooled(&self, prompt: &str) -> Vec<f32> {
        let e = self.encode(prompt);
        (0..self.d_model)
            .map(|c| (0..self.tokens).map(|r| e[(r, c)]).sum::<f32>() / self.tokens as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_prompt_same_embedding() {
        let enc = ConditioningEncoder::new(8, 16);
        assert_eq!(enc.encode("hello"), enc.encode("hello"));
    }

    #[test]
    fn different_prompts_differ() {
        let enc = ConditioningEncoder::new(8, 16);
        assert_ne!(enc.encode("hello"), enc.encode("world"));
    }

    #[test]
    fn pooled_embedding_has_model_width() {
        let enc = ConditioningEncoder::new(8, 16);
        assert_eq!(enc.encode_pooled("x").len(), 16);
    }

    #[test]
    fn empty_prompt_is_valid() {
        let enc = ConditioningEncoder::new(2, 4);
        assert_eq!(enc.encode("").shape(), (2, 4));
    }
}
