//! The three diffusion-network topologies of paper Fig. 3(a).
//!
//! * **Type 1** (UNet without ResBlocks): token downsampling, transformer
//!   blocks at the bottleneck, upsampling with a skip connection.
//! * **Type 2** (UNet with ResBlocks): adds convolutional residual stages
//!   before and after — the portion EXION leaves unoptimized ("we have not
//!   utilized any sparsity optimizations [in ResBlocks]").
//! * **Type 3** (transformer only): a DiT-style stack.
//!
//! All three share [`TransformerBlock`]s and implement [`NoisePredictor`], so
//! the same DDIM loop drives them.

use exion_core::OpCounts;
use exion_tensor::activation::silu;
use exion_tensor::{ops, Matrix};

use crate::config::{ModelConfig, NetworkType};
use crate::sampler::NoisePredictor;
use crate::transformer::{BlockReport, BlockWeights, ExecPolicy, TransformerBlock};

/// A convolutional residual stage: kernel-3 token convolution → SiLU →
/// kernel-3 token convolution → residual add. Stands in for the UNet's 2-D
/// conv ResBlocks at matched MAC cost per token.
#[derive(Debug, Clone, PartialEq)]
pub struct ResBlock {
    taps1: [Matrix; 3],
    taps2: [Matrix; 3],
}

impl ResBlock {
    /// Xavier-initialized ResBlock of width `d`.
    pub fn random(d: usize, seed: u64) -> Self {
        let t = |i: u64| exion_tensor::rng::xavier_uniform(d, d, seed.wrapping_add(i));
        Self {
            taps1: [t(0), t(1), t(2)],
            taps2: [t(3), t(4), t(5)],
        }
    }

    /// Kernel-3 convolution over the token axis with same-padding.
    fn conv(x: &Matrix, taps: &[Matrix; 3]) -> Matrix {
        let n = x.rows() as isize;
        let mut out = ops::matmul(x, &taps[1]);
        for (offset, tap) in [(-1isize, &taps[0]), (1, &taps[2])] {
            for r in 0..n {
                let src = r + offset;
                if src < 0 || src >= n {
                    continue;
                }
                let contrib = ops::matmul(
                    &Matrix::from_vec(1, x.cols(), x.row(src as usize).to_vec()),
                    tap,
                );
                let out_row = out.row_mut(r as usize);
                for (o, &c) in out_row.iter_mut().zip(contrib.row(0)) {
                    *o += c;
                }
            }
        }
        out
    }

    /// Forward pass with residual.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let h = Self::conv(x, &self.taps1).map(silu);
        ops::add(x, &Self::conv(&h, &self.taps2))
    }

    /// MACs of one forward pass on `n` tokens of width `d`.
    pub fn macs(n: usize, d: usize) -> u64 {
        2 * 3 * (n * d * d) as u64
    }
}

/// Halves the token count by averaging adjacent pairs (odd tails pass
/// through).
pub fn downsample(x: &Matrix) -> Matrix {
    let n = x.rows() / 2;
    let mut out = Matrix::zeros(n + x.rows() % 2, x.cols());
    for r in 0..n {
        let a = x.row(2 * r);
        let b = x.row(2 * r + 1);
        let o = out.row_mut(r);
        for c in 0..a.len() {
            o[c] = 0.5 * (a[c] + b[c]);
        }
    }
    if x.rows() % 2 == 1 {
        let last = x.rows() - 1;
        out.row_mut(n).copy_from_slice(x.row(last));
    }
    out
}

/// Doubles the token count by repeating each token, truncated to `target`
/// rows.
pub fn upsample(x: &Matrix, target: usize) -> Matrix {
    Matrix::from_fn(target, x.cols(), |r, c| x[((r / 2).min(x.rows() - 1), c)])
}

/// Per-iteration instrumentation of the whole network.
#[derive(Debug, Clone, Default)]
pub struct IterationRecord {
    /// Per-transformer-block reports, in execution order.
    pub blocks: Vec<BlockReport>,
    /// ResBlock MACs (never optimized: performed == dense).
    pub resblock_ops: OpCounts,
}

impl IterationRecord {
    /// Total MACs performed vs dense for the whole iteration.
    pub fn total_ops(&self) -> OpCounts {
        self.blocks
            .iter()
            .fold(self.resblock_ops, |acc, b| acc.merge(&b.total_ops()))
    }
}

/// A complete denoising network of one of the three topologies.
#[derive(Debug, Clone)]
pub struct DiffusionNetwork {
    network_type: NetworkType,
    d_model: usize,
    blocks: Vec<TransformerBlock>,
    res_pre: Option<ResBlock>,
    res_post: Option<ResBlock>,
    final_proj: Matrix,
    pos_embed: Matrix,
    content: Matrix,
    policy: ExecPolicy,
    cond_pooled: Option<Vec<f32>>,
    records: Vec<IterationRecord>,
}

impl DiffusionNetwork {
    /// Builds a network from a benchmark config's sim-scale parameters.
    pub fn new(config: &ModelConfig, policy: ExecPolicy, seed: u64) -> Self {
        let p = &config.sim;
        let blocks = (0..p.blocks)
            .map(|i| {
                TransformerBlock::new(BlockWeights::random(
                    p,
                    config.geglu,
                    seed.wrapping_add(1000 * i as u64),
                ))
            })
            .collect();
        let (res_pre, res_post) = match config.network {
            NetworkType::UNetRes => (
                Some(ResBlock::random(p.d_model, seed.wrapping_add(77))),
                Some(ResBlock::random(p.d_model, seed.wrapping_add(88))),
            ),
            _ => (None, None),
        };
        Self {
            network_type: config.network,
            d_model: p.d_model,
            blocks,
            res_pre,
            res_post,
            final_proj: exion_tensor::rng::xavier_uniform(
                p.d_model,
                p.d_model,
                seed.wrapping_add(99),
            ),
            // Fixed positional embedding: keeps token rows differentiated
            // through the denoising trajectory, as real models' positional
            // encodings do. Without it the rows of a random-weight network
            // collapse toward each other and the output bitmasks acquire
            // whole-column structure the paper's models do not show.
            pos_embed: exion_tensor::rng::seeded_normal(
                p.tokens,
                p.d_model,
                1.0,
                seed.wrapping_add(111),
            ),
            // The implicit generation target: a trained denoiser pulls x0
            // toward a data sample whose tokens are *diverse* (distinct image
            // patches / motion frames). A fixed random network instead has a
            // low-rank attractor; subtracting a seeded per-token content
            // matrix from the predicted noise restores a token-diverse
            // attractor (x0 converges toward `content`).
            content: exion_tensor::rng::seeded_normal(
                p.tokens,
                p.d_model,
                1.0,
                seed.wrapping_add(222),
            ),
            policy,
            cond_pooled: None,
            records: Vec::new(),
        }
    }

    /// Sets the pooled conditioning vector added to every token.
    ///
    /// # Panics
    ///
    /// Panics if the vector width differs from `d_model`.
    pub fn set_condition(&mut self, pooled: Vec<f32>) {
        assert_eq!(pooled.len(), self.d_model, "conditioning width mismatch");
        self.cond_pooled = Some(pooled);
    }

    /// The execution policy.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// Drains the per-iteration instrumentation records.
    pub fn take_records(&mut self) -> Vec<IterationRecord> {
        std::mem::take(&mut self.records)
    }

    /// Resets all FFN-Reuse state (e.g. between generations).
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        self.records.clear();
    }

    /// Sinusoidal timestep embedding of width `d`.
    pub fn time_embedding(t: usize, d: usize) -> Vec<f32> {
        (0..d)
            .map(|j| {
                let pair = (j / 2) as f32;
                let freq = (10_000.0f32).powf(-2.0 * pair / d as f32);
                let angle = t as f32 * freq;
                if j % 2 == 0 {
                    angle.sin()
                } else {
                    angle.cos()
                }
            })
            .collect()
    }
}

impl NoisePredictor for DiffusionNetwork {
    fn predict_noise(&mut self, x: &Matrix, t: usize) -> Matrix {
        assert_eq!(x.cols(), self.d_model, "input width mismatch");
        let mut record = IterationRecord::default();

        // Timestep, positional and conditioning injection.
        let t_emb = Self::time_embedding(t, self.d_model);
        let mut h = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            let cond = self.cond_pooled.as_ref().map_or(0.0, |p| 0.1 * p[c]);
            let pos = self.pos_embed[(r % self.pos_embed.rows(), c)];
            x[(r, c)] + 0.1 * t_emb[c] + pos + cond
        });

        if let Some(res) = &self.res_pre {
            h = res.forward(&h);
            let macs = ResBlock::macs(h.rows(), self.d_model);
            record.resblock_ops = record.resblock_ops.merge(&OpCounts::new(macs, macs));
        }

        let use_unet = matches!(
            self.network_type,
            NetworkType::UNetPlain | NetworkType::UNetRes
        );
        let skip = h.clone();
        if use_unet {
            h = downsample(&h);
        }
        for block in &mut self.blocks {
            let (out, report) = block.forward(&h, &self.policy);
            record.blocks.push(report);
            h = out;
        }
        if use_unet {
            h = ops::add(&upsample(&h, skip.rows()), &skip);
        }

        if let Some(res) = &self.res_post {
            h = res.forward(&h);
            let macs = ResBlock::macs(h.rows(), self.d_model);
            record.resblock_ops = record.resblock_ops.merge(&OpCounts::new(macs, macs));
        }

        self.records.push(record);
        // Noise prediction head: a trained ε-predictor's output is dominated
        // by the actual noise content of x_t (which *is* most of x_t at high
        // t), modulated by learned structure. The identity-dominated mix
        // models that; a pure random projection would instead act as a power
        // iteration and collapse the token rows onto the network's low-rank
        // attractor over the DDIM trajectory, destroying the row-diversity
        // the paper's sparsity-structure measurements rely on.
        let net = ops::matmul(&h, &self.final_proj);
        // Center the learned term across tokens: an untrained network emits a
        // large all-token-shared vector (near-uniform attention makes every
        // row see the same context); accumulated over the trajectory it would
        // correlate all token rows. Trained predictors carry no such shared
        // bias beyond what is already in x.
        let col_mean: Vec<f32> = (0..net.cols())
            .map(|c| (0..net.rows()).map(|r| net[(r, c)]).sum::<f32>() / net.rows() as f32)
            .collect();
        Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            let content = self.content[(r % self.content.rows(), c)];
            0.85 * x[(r, c)] + 0.25 * (net[(r, c)] - col_mean[c]) - 0.35 * content
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use exion_tensor::rng::seeded_uniform;
    use exion_tensor::stats;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(2, 4)
    }

    #[test]
    fn resblock_is_residual() {
        let rb = ResBlock::random(8, 1);
        let x = seeded_uniform(6, 8, -1.0, 1.0, 2);
        let y = rb.forward(&x);
        assert_eq!(y.shape(), x.shape());
        assert!(stats::cosine_similarity(x.as_slice(), y.as_slice()) > 0.3);
    }

    #[test]
    fn down_up_round_trip_shapes() {
        let x = seeded_uniform(8, 4, -1.0, 1.0, 3);
        let d = downsample(&x);
        assert_eq!(d.shape(), (4, 4));
        let u = upsample(&d, 8);
        assert_eq!(u.shape(), (8, 4));
        // Odd token count passes the tail through.
        let odd = seeded_uniform(5, 4, -1.0, 1.0, 4);
        assert_eq!(downsample(&odd).shape(), (3, 4));
    }

    #[test]
    fn downsample_averages_pairs() {
        let x = Matrix::from_vec(2, 1, vec![1.0, 3.0]);
        assert_eq!(downsample(&x).as_slice(), &[2.0]);
    }

    #[test]
    fn all_topologies_predict_noise_of_input_shape() {
        for kind in [ModelKind::Mld, ModelKind::StableDiffusion, ModelKind::Dit] {
            let config = tiny(kind);
            let mut net = DiffusionNetwork::new(&config, ExecPolicy::vanilla(), 5);
            let x = seeded_uniform(config.sim.tokens, config.sim.d_model, -1.0, 1.0, 6);
            let y = net.predict_noise(&x, 10);
            assert_eq!(y.shape(), x.shape(), "{}", config.kind.name());
            let records = net.take_records();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].blocks.len(), config.sim.blocks);
        }
    }

    #[test]
    fn unet_res_records_resblock_ops() {
        let config = tiny(ModelKind::StableDiffusion);
        let mut net = DiffusionNetwork::new(&config, ExecPolicy::vanilla(), 7);
        let x = seeded_uniform(config.sim.tokens, config.sim.d_model, -1.0, 1.0, 8);
        let _ = net.predict_noise(&x, 5);
        let records = net.take_records();
        assert!(records[0].resblock_ops.dense > 0);
        assert_eq!(
            records[0].resblock_ops.performed, records[0].resblock_ops.dense,
            "ResBlocks are never optimized"
        );
    }

    #[test]
    fn dit_records_no_resblock_ops() {
        let config = tiny(ModelKind::Dit);
        let mut net = DiffusionNetwork::new(&config, ExecPolicy::vanilla(), 9);
        let x = seeded_uniform(config.sim.tokens, config.sim.d_model, -1.0, 1.0, 10);
        let _ = net.predict_noise(&x, 5);
        assert_eq!(net.take_records()[0].resblock_ops.dense, 0);
    }

    #[test]
    fn timestep_changes_prediction() {
        let config = tiny(ModelKind::Dit);
        let mut net = DiffusionNetwork::new(&config, ExecPolicy::vanilla(), 11);
        let x = seeded_uniform(config.sim.tokens, config.sim.d_model, -1.0, 1.0, 12);
        let y1 = net.predict_noise(&x, 10);
        let y2 = net.predict_noise(&x, 900);
        assert_ne!(y1, y2);
    }

    #[test]
    fn conditioning_changes_prediction() {
        let config = tiny(ModelKind::Mld);
        let mut net = DiffusionNetwork::new(&config, ExecPolicy::vanilla(), 13);
        let x = seeded_uniform(config.sim.tokens, config.sim.d_model, -1.0, 1.0, 14);
        let y1 = net.predict_noise(&x, 10);
        net.set_condition(vec![1.0; config.sim.d_model]);
        let y2 = net.predict_noise(&x, 10);
        assert_ne!(y1, y2);
    }

    #[test]
    fn time_embedding_is_bounded_and_varies() {
        let e1 = DiffusionNetwork::time_embedding(5, 16);
        let e2 = DiffusionNetwork::time_embedding(500, 16);
        assert_ne!(e1, e2);
        assert!(e1.iter().all(|v| v.abs() <= 1.0));
    }
}
