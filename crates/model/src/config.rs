//! The seven EXION benchmark model configurations.
//!
//! Per-model optimization settings come from the paper's Table I and Fig. 6.
//! Where the two tables' OCR-ambiguous rows disagree, the `(N, sparsity)`
//! pairing was chosen to reproduce the *reported FFN op reduction* via the
//! closed form `reduction ≈ N·s/(N+1)` (EXPERIMENTS.md documents the check
//! per model).
//!
//! Paper-scale dimensions approximate the published architectures
//! (MLD latent transformer, MDM/EDGE motion transformers, Make-an-Audio and
//! Stable Diffusion latent UNets, DiT-XL/2, VideoCrafter2) and are used only
//! for analytic op counting; sim-scale dimensions drive the functional
//! experiments.

use serde::{Deserialize, Serialize};

/// The three diffusion-network topologies of paper Fig. 3(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkType {
    /// Type 1: UNet without ResBlocks (down/up sampling around transformer
    /// blocks).
    UNetPlain,
    /// Type 2: UNet with ResBlocks (convolutional residual stages around the
    /// transformer blocks — the part EXION does *not* optimize).
    UNetRes,
    /// Type 3: transformer blocks only (DiT-style).
    TransformerOnly,
}

/// The seven benchmark models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Text-to-motion in a motion latent space (CVPR'23).
    Mld,
    /// Human Motion Diffusion Model, raw motion tokens (ICLR'23).
    Mdm,
    /// Editable Dance GEneration, music-to-motion (CVPR'23).
    Edge,
    /// Text-to-audio latent diffusion (ICML'23).
    MakeAnAudio,
    /// Latent text-to-image diffusion (CVPR'22).
    StableDiffusion,
    /// Scalable diffusion transformer, class-to-image (ICCV'23).
    Dit,
    /// Text-to-video latent diffusion (CVPR'24).
    VideoCrafter2,
}

impl ModelKind {
    /// All seven benchmarks in the paper's ordering.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Mld,
        ModelKind::Mdm,
        ModelKind::MakeAnAudio,
        ModelKind::StableDiffusion,
        ModelKind::VideoCrafter2,
        ModelKind::Dit,
        ModelKind::Edge,
    ];

    /// Human-readable benchmark name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mld => "MLD",
            ModelKind::Mdm => "MDM",
            ModelKind::Edge => "EDGE",
            ModelKind::MakeAnAudio => "Make-an-Audio",
            ModelKind::StableDiffusion => "Stable Diffusion",
            ModelKind::Dit => "DiT",
            ModelKind::VideoCrafter2 => "VideoCrafter2",
        }
    }

    /// The generation task (paper Table I).
    pub fn task(&self) -> &'static str {
        match self {
            ModelKind::Mld | ModelKind::Mdm => "Text-to-Motion",
            ModelKind::Edge => "Music-to-Motion",
            ModelKind::MakeAnAudio => "Text-to-Audio",
            ModelKind::StableDiffusion => "Text-to-Image",
            ModelKind::Dit => "Image Generation",
            ModelKind::VideoCrafter2 => "Text-to-Video",
        }
    }
}

/// Transformer dimensions at one scale (paper or sim).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleParams {
    /// Sequence length entering the transformer blocks.
    pub tokens: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (`d_model % heads == 0`).
    pub heads: usize,
    /// First FFN layer output width (2× the activation width for GEGLU).
    pub d_ff: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Conditioning tokens (0 = unconditional).
    pub cond_tokens: usize,
    /// Fraction of per-iteration compute spent outside transformer blocks
    /// (ResBlocks, embeddings, sampling math) — drives Fig. 4's "Etc." bar
    /// and the Type-2 models' unoptimized portion.
    pub resblock_ops_share: f64,
}

impl ScaleParams {
    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }
}

/// FFN-Reuse setting for one model (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FfnReuseSetting {
    /// Sparse iterations between dense iterations.
    pub sparse_iters: usize,
    /// Target inter-iteration output sparsity of the first FFN layer,
    /// consistent with the reported op reduction via `N·s/(N+1)`.
    pub target_sparsity: f64,
    /// The FFN op reduction the paper reports for this model (%, Fig. 6).
    pub paper_op_reduction_pct: f64,
    /// The FFN output sparsity the paper's ConMerge figures (8/9/17) quote
    /// for this model. The paper's Fig. 6 and Fig. 17 sparsity values are
    /// mutually inconsistent for some models (see EXPERIMENTS.md); the
    /// compaction experiments use this value.
    pub conmerge_sparsity: f64,
}

/// Phase of one denoising iteration under FFN-Reuse: dense iterations
/// recompute the first FFN layer fully (and regenerate the sparsity
/// bitmasks); sparse iterations reuse them and skip the predicted zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IterationPhase {
    /// Full recomputation (an FFN-Reuse phase boundary).
    Dense,
    /// Bitmask-reusing sparse execution.
    Sparse,
}

impl IterationPhase {
    /// Whether this is the sparse (reusing) phase.
    pub fn is_sparse(&self) -> bool {
        matches!(self, IterationPhase::Sparse)
    }
}

impl FfnReuseSetting {
    /// The FFN-Reuse period: one dense iteration followed by `sparse_iters`
    /// sparse ones.
    pub fn period(&self) -> usize {
        self.sparse_iters + 1
    }

    /// The phase of denoising step `step` (0-based) when FFN-Reuse is
    /// active. Step 0 and every `period()`-th step after it are dense.
    pub fn phase_of_step(&self, step: usize) -> IterationPhase {
        if step.is_multiple_of(self.period()) {
            IterationPhase::Dense
        } else {
            IterationPhase::Sparse
        }
    }

    /// Steps until the next dense phase boundary at or after `step`
    /// (0 when `step` itself is a boundary). Continuous-batching schedulers
    /// use this to admit requests only at aligned iteration boundaries.
    pub fn steps_to_boundary(&self, step: usize) -> usize {
        let rem = step % self.period();
        if rem == 0 {
            0
        } else {
            self.period() - rem
        }
    }
}

/// Eager-prediction setting for one model (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpSetting {
    /// Dominance threshold `q_th`.
    pub q_th: f32,
    /// Top-k ratio `k`.
    pub top_k_ratio: f32,
    /// The intra-iteration sparsity the paper reports (%).
    pub paper_sparsity_pct: f64,
}

/// Full benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which benchmark.
    pub kind: ModelKind,
    /// Network topology (Fig. 3(a)).
    pub network: NetworkType,
    /// Whether the FFN uses GEGLU (Stable Diffusion / VideoCrafter2) or GELU.
    pub geglu: bool,
    /// Denoising iterations (Table I: 50, DiT 100).
    pub iterations: usize,
    /// Published-architecture dimensions for analytic op counting.
    pub paper: ScaleParams,
    /// Reduced dimensions for functional simulation.
    pub sim: ScaleParams,
    /// FFN-Reuse configuration.
    pub ffn_reuse: FfnReuseSetting,
    /// Eager-prediction configuration.
    pub ep: EpSetting,
}

impl ModelConfig {
    /// The configuration of one benchmark.
    pub fn for_kind(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Mld => Self {
                kind,
                network: NetworkType::TransformerOnly,
                geglu: false,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 8,
                    d_model: 256,
                    heads: 4,
                    d_ff: 1024,
                    blocks: 9,
                    cond_tokens: 77,
                    resblock_ops_share: 0.0,
                },
                sim: ScaleParams {
                    // MLD denoises a tiny latent sequence — few output rows
                    // are what make whole-column condensing so effective for
                    // it (Fig. 8).
                    tokens: 8,
                    d_model: 32,
                    heads: 4,
                    d_ff: 256,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.0,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 4,
                    target_sparsity: 0.97,
                    paper_op_reduction_pct: 77.58,
                    conmerge_sparsity: 0.97,
                },
                ep: EpSetting {
                    q_th: 0.3,
                    top_k_ratio: 0.7,
                    paper_sparsity_pct: 30.0,
                },
            },
            ModelKind::Mdm => Self {
                kind,
                network: NetworkType::TransformerOnly,
                geglu: false,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 196,
                    d_model: 512,
                    heads: 4,
                    d_ff: 2048,
                    blocks: 8,
                    cond_tokens: 77,
                    resblock_ops_share: 0.0,
                },
                sim: ScaleParams {
                    tokens: 32,
                    d_model: 32,
                    heads: 4,
                    d_ff: 256,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.0,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 5,
                    target_sparsity: 0.95,
                    paper_op_reduction_pct: 79.51,
                    conmerge_sparsity: 0.97,
                },
                ep: EpSetting {
                    q_th: 0.3,
                    top_k_ratio: 0.05,
                    paper_sparsity_pct: 95.0,
                },
            },
            ModelKind::Edge => Self {
                kind,
                network: NetworkType::TransformerOnly,
                geglu: false,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 150,
                    d_model: 512,
                    heads: 8,
                    d_ff: 2048,
                    blocks: 12,
                    cond_tokens: 150,
                    resblock_ops_share: 0.0,
                },
                sim: ScaleParams {
                    tokens: 32,
                    d_model: 32,
                    heads: 4,
                    d_ff: 256,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.0,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 5,
                    target_sparsity: 0.95,
                    paper_op_reduction_pct: 77.86,
                    conmerge_sparsity: 0.80,
                },
                ep: EpSetting {
                    q_th: 0.9,
                    top_k_ratio: 0.5,
                    paper_sparsity_pct: 50.0,
                },
            },
            ModelKind::MakeAnAudio => Self {
                kind,
                network: NetworkType::UNetRes,
                geglu: false,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 256,
                    d_model: 320,
                    heads: 8,
                    d_ff: 1280,
                    blocks: 8,
                    cond_tokens: 77,
                    resblock_ops_share: 0.35,
                },
                sim: ScaleParams {
                    tokens: 32,
                    d_model: 32,
                    heads: 4,
                    d_ff: 256,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.35,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 2,
                    target_sparsity: 0.8,
                    paper_op_reduction_pct: 52.79,
                    conmerge_sparsity: 0.95,
                },
                ep: EpSetting {
                    q_th: 0.7,
                    top_k_ratio: 0.2,
                    paper_sparsity_pct: 80.0,
                },
            },
            ModelKind::StableDiffusion => Self {
                kind,
                network: NetworkType::UNetRes,
                geglu: true,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 1024,
                    d_model: 640,
                    heads: 10,
                    d_ff: 5120,
                    blocks: 16,
                    cond_tokens: 77,
                    resblock_ops_share: 0.33,
                },
                sim: ScaleParams {
                    tokens: 96,
                    d_model: 32,
                    heads: 4,
                    d_ff: 512,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.33,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 3,
                    target_sparsity: 0.7,
                    paper_op_reduction_pct: 52.47,
                    conmerge_sparsity: 0.97,
                },
                ep: EpSetting {
                    q_th: 0.8,
                    top_k_ratio: 0.8,
                    paper_sparsity_pct: 20.0,
                },
            },
            ModelKind::Dit => Self {
                kind,
                network: NetworkType::TransformerOnly,
                geglu: false,
                iterations: 100,
                paper: ScaleParams {
                    tokens: 256,
                    d_model: 1152,
                    heads: 16,
                    d_ff: 4608,
                    blocks: 28,
                    cond_tokens: 1,
                    resblock_ops_share: 0.0,
                },
                sim: ScaleParams {
                    tokens: 32,
                    d_model: 32,
                    heads: 4,
                    d_ff: 256,
                    blocks: 2,
                    cond_tokens: 4,
                    resblock_ops_share: 0.0,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 9,
                    target_sparsity: 0.95,
                    paper_op_reduction_pct: 85.41,
                    conmerge_sparsity: 0.95,
                },
                ep: EpSetting {
                    q_th: 0.15,
                    top_k_ratio: 0.05,
                    paper_sparsity_pct: 95.0,
                },
            },
            ModelKind::VideoCrafter2 => Self {
                kind,
                network: NetworkType::UNetRes,
                geglu: true,
                iterations: 50,
                paper: ScaleParams {
                    tokens: 1600,
                    d_model: 1024,
                    heads: 16,
                    d_ff: 8192,
                    blocks: 16,
                    cond_tokens: 77,
                    resblock_ops_share: 0.07,
                },
                sim: ScaleParams {
                    tokens: 96,
                    d_model: 32,
                    heads: 4,
                    d_ff: 512,
                    blocks: 2,
                    cond_tokens: 8,
                    resblock_ops_share: 0.07,
                },
                ffn_reuse: FfnReuseSetting {
                    sparse_iters: 5,
                    target_sparsity: 0.95,
                    paper_op_reduction_pct: 77.89,
                    conmerge_sparsity: 0.70,
                },
                ep: EpSetting {
                    q_th: 2.0,
                    top_k_ratio: 0.5,
                    paper_sparsity_pct: 50.0,
                },
            },
        }
    }

    /// All seven benchmark configurations.
    pub fn all() -> Vec<ModelConfig> {
        ModelKind::ALL.iter().map(|&k| Self::for_kind(k)).collect()
    }

    /// The phases of every denoising iteration, in order: a materialized
    /// view over [`FfnReuseSetting::phase_of_step`] for offline analysis
    /// and plotting. Schedulers on the hot path should query
    /// `phase_of_step`/`period` directly instead of allocating this.
    pub fn iteration_phases(&self) -> Vec<IterationPhase> {
        (0..self.iterations)
            .map(|i| self.ffn_reuse.phase_of_step(i))
            .collect()
    }

    /// A copy with sim-scale dimensions shrunk further (for fast unit tests):
    /// tokens/d_model/d_ff divided by `factor` (floored at hardware-friendly
    /// minimums), block count capped at 1, iterations capped at `max_iters`.
    pub fn shrunk(mut self, factor: usize, max_iters: usize) -> Self {
        let f = factor.max(1);
        self.sim.tokens = (self.sim.tokens / f).max(8);
        self.sim.d_model = (self.sim.d_model / f).max(16);
        self.sim.heads = self.sim.heads.min(2);
        self.sim.d_ff = (self.sim.d_ff / f).max(32);
        self.sim.blocks = 1;
        self.sim.cond_tokens = self.sim.cond_tokens.min(4);
        self.iterations = self.iterations.min(max_iters);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_benchmarks_present() {
        let configs = ModelConfig::all();
        assert_eq!(configs.len(), 7);
        let names: Vec<&str> = configs.iter().map(|c| c.kind.name()).collect();
        assert!(names.contains(&"Stable Diffusion"));
        assert!(names.contains(&"DiT"));
    }

    #[test]
    fn head_widths_divide_evenly() {
        for c in ModelConfig::all() {
            assert_eq!(c.paper.d_model % c.paper.heads, 0, "{}", c.kind.name());
            assert_eq!(c.sim.d_model % c.sim.heads, 0, "{}", c.kind.name());
        }
    }

    #[test]
    fn geglu_models_have_even_d_ff() {
        for c in ModelConfig::all() {
            if c.geglu {
                assert_eq!(c.paper.d_ff % 2, 0);
                assert_eq!(c.sim.d_ff % 2, 0);
            }
        }
    }

    #[test]
    fn dit_runs_100_iterations_others_50() {
        for c in ModelConfig::all() {
            let want = if c.kind == ModelKind::Dit { 100 } else { 50 };
            assert_eq!(c.iterations, want, "{}", c.kind.name());
        }
    }

    #[test]
    fn ffn_reuse_settings_match_paper_closed_form() {
        // reduction ≈ N·s/(N+1) should land within a few points of the
        // paper's Fig. 6 values (see EXPERIMENTS.md).
        for c in ModelConfig::all() {
            let n = c.ffn_reuse.sparse_iters as f64;
            let s = c.ffn_reuse.target_sparsity;
            let predicted = 100.0 * n * s / (n + 1.0);
            let gap = (predicted - c.ffn_reuse.paper_op_reduction_pct).abs();
            assert!(
                gap < 5.0,
                "{}: closed-form {predicted:.1}% vs paper {:.2}%",
                c.kind.name(),
                c.ffn_reuse.paper_op_reduction_pct
            );
        }
    }

    #[test]
    fn ep_sparsity_matches_top_k() {
        // Table I: intra-iteration sparsity ≈ 1 − k.
        for c in ModelConfig::all() {
            let implied = 100.0 * (1.0 - c.ep.top_k_ratio as f64);
            assert!(
                (implied - c.ep.paper_sparsity_pct).abs() < 1.0,
                "{}",
                c.kind.name()
            );
        }
    }

    #[test]
    fn resblock_share_only_on_unet_res() {
        for c in ModelConfig::all() {
            match c.network {
                NetworkType::UNetRes => assert!(c.paper.resblock_ops_share > 0.0),
                _ => assert_eq!(c.paper.resblock_ops_share, 0.0),
            }
        }
    }

    #[test]
    fn iteration_phase_metadata_matches_period() {
        for c in ModelConfig::all() {
            let phases = c.iteration_phases();
            assert_eq!(phases.len(), c.iterations);
            assert_eq!(phases[0], IterationPhase::Dense, "{}", c.kind.name());
            let period = c.ffn_reuse.period();
            let dense = phases.iter().filter(|p| !p.is_sparse()).count();
            assert_eq!(dense, c.iterations.div_ceil(period), "{}", c.kind.name());
            for (i, p) in phases.iter().enumerate() {
                assert_eq!(p.is_sparse(), i % period != 0);
                let to_boundary = c.ffn_reuse.steps_to_boundary(i);
                assert_eq!((i + to_boundary) % period, 0);
                assert!(to_boundary < period);
            }
        }
    }

    #[test]
    fn shrunk_caps_dimensions() {
        let c = ModelConfig::for_kind(ModelKind::StableDiffusion).shrunk(2, 6);
        assert!(c.sim.tokens <= 48);
        assert_eq!(c.sim.blocks, 1);
        assert_eq!(c.iterations, 6);
        assert_eq!(c.sim.d_model % c.sim.heads, 0);
    }
}
