//! Diffusion noise schedules (forward process variances).

use serde::{Deserialize, Serialize};

/// Precomputed β / α / ᾱ tables of a diffusion forward process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffusionSchedule {
    betas: Vec<f32>,
    alphas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl DiffusionSchedule {
    /// Linear β schedule (Ho et al., DDPM): β ramps from `1e-4` to `0.02`
    /// over `steps` timesteps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn linear(steps: usize) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        let beta_start = 1e-4f32;
        let beta_end = 0.02f32;
        let betas: Vec<f32> = (0..steps)
            .map(|t| {
                if steps == 1 {
                    beta_start
                } else {
                    beta_start + (beta_end - beta_start) * t as f32 / (steps - 1) as f32
                }
            })
            .collect();
        Self::from_betas(betas)
    }

    /// Cosine ᾱ schedule (Nichol & Dhariwal).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn cosine(steps: usize) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        let s = 0.008f32;
        let f = |t: f32| {
            ((t / steps as f32 + s) / (1.0 + s) * std::f32::consts::FRAC_PI_2)
                .cos()
                .powi(2)
        };
        let f0 = f(0.0);
        let mut betas = Vec::with_capacity(steps);
        let mut prev = 1.0f32;
        for t in 0..steps {
            let abar = f((t + 1) as f32) / f0;
            let beta = (1.0 - abar / prev).clamp(1e-5, 0.999);
            betas.push(beta);
            prev = abar;
        }
        Self::from_betas(betas)
    }

    /// Builds the α / ᾱ tables from explicit βs.
    ///
    /// # Panics
    ///
    /// Panics if any β is outside `(0, 1)`.
    pub fn from_betas(betas: Vec<f32>) -> Self {
        let mut alphas = Vec::with_capacity(betas.len());
        let mut alpha_bars = Vec::with_capacity(betas.len());
        let mut bar = 1.0f32;
        for &b in &betas {
            assert!(b > 0.0 && b < 1.0, "beta {b} outside (0, 1)");
            let a = 1.0 - b;
            bar *= a;
            alphas.push(a);
            alpha_bars.push(bar);
        }
        Self {
            betas,
            alphas,
            alpha_bars,
        }
    }

    /// Number of timesteps.
    pub fn steps(&self) -> usize {
        self.betas.len()
    }

    /// β at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// α = 1 − β at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn alpha(&self, t: usize) -> f32 {
        self.alphas[t]
    }

    /// ᾱ (cumulative product of α) at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_monotone() {
        let s = DiffusionSchedule::linear(1000);
        assert_eq!(s.steps(), 1000);
        assert!(s.beta(0) < s.beta(999));
        assert!((s.beta(0) - 1e-4).abs() < 1e-9);
        assert!((s.beta(999) - 0.02).abs() < 1e-6);
    }

    #[test]
    fn alpha_bar_decreases_to_near_zero() {
        let s = DiffusionSchedule::linear(1000);
        for t in 1..1000 {
            assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
        }
        assert!(s.alpha_bar(999) < 0.01);
        assert!(s.alpha_bar(0) > 0.99);
    }

    #[test]
    fn cosine_schedule_valid() {
        let s = DiffusionSchedule::cosine(100);
        for t in 0..100 {
            assert!(s.beta(t) > 0.0 && s.beta(t) < 1.0);
            assert!(s.alpha_bar(t) > 0.0 && s.alpha_bar(t) <= 1.0);
        }
        assert!(s.alpha_bar(99) < 0.05);
    }

    #[test]
    fn alpha_bar_is_cumulative_product() {
        let s = DiffusionSchedule::linear(10);
        let mut bar = 1.0f32;
        for t in 0..10 {
            bar *= s.alpha(t);
            assert!((s.alpha_bar(t) - bar).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let _ = DiffusionSchedule::linear(0);
    }
}
