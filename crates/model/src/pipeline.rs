//! End-to-end generation pipeline with instrumentation.
//!
//! [`GenerationPipeline`] wires a benchmark config's network into the DDIM
//! reverse process and collects a [`RunReport`] — the raw material of every
//! accuracy and sparsity experiment (Table I, Figs. 6, 7, 8, 9, 15, 17).

use exion_core::ep::EpConfig;
use exion_core::ffn_reuse::{FfnReuseConfig, IterationKind};
use exion_core::{Bitmask2D, OpCounts};
use exion_tensor::Matrix;

use crate::conditioning::ConditioningEncoder;
use crate::config::ModelConfig;
use crate::network::{DiffusionNetwork, IterationRecord};
use crate::sampler::DdimSampler;
use crate::schedule::DiffusionSchedule;
use crate::transformer::ExecPolicy;

/// The paper's ablation rows (Table I, Fig. 18's `_Base/_EP/_FFNR/_All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Dense baseline.
    Vanilla,
    /// FFN-Reuse only.
    FfnReuse,
    /// Eager prediction only.
    Ep,
    /// FFN-Reuse + eager prediction.
    FfnReuseEp,
    /// FFN-Reuse + EP + INT12 PTQ.
    FfnReuseEpQuant,
}

impl Ablation {
    /// Builds the execution policy for a benchmark using its Table-I/Fig.-6
    /// per-model settings.
    pub fn policy(&self, config: &ModelConfig) -> ExecPolicy {
        let reuse = FfnReuseConfig::with_target_sparsity(
            config.ffn_reuse.target_sparsity,
            config.ffn_reuse.sparse_iters,
        );
        let ep = EpConfig::new(config.ep.q_th, config.ep.top_k_ratio);
        match self {
            Ablation::Vanilla => ExecPolicy::vanilla(),
            Ablation::FfnReuse => ExecPolicy::vanilla().with_ffn_reuse(reuse),
            Ablation::Ep => ExecPolicy::vanilla().with_ep(ep),
            Ablation::FfnReuseEp => ExecPolicy::vanilla().with_ffn_reuse(reuse).with_ep(ep),
            Ablation::FfnReuseEpQuant => ExecPolicy::vanilla()
                .with_ffn_reuse(reuse)
                .with_ep(ep)
                .with_quant(),
        }
    }

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Ablation::Vanilla => "Vanilla",
            Ablation::FfnReuse => "FFN-Reuse",
            Ablation::Ep => "EP",
            Ablation::FfnReuseEp => "FFN-Reuse+EP",
            Ablation::FfnReuseEpQuant => "FFN-Reuse+EP+Quant",
        }
    }
}

/// Everything measured during one generation.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-iteration, per-block instrumentation.
    pub iterations: Vec<IterationRecord>,
}

impl RunReport {
    /// Total MACs performed vs dense across the whole run.
    pub fn total_ops(&self) -> OpCounts {
        self.iterations
            .iter()
            .fold(OpCounts::default(), |acc, it| acc.merge(&it.total_ops()))
    }

    /// FFN MACs performed vs dense across the whole run (Fig. 6's
    /// "# of Ops" reduction).
    pub fn ffn_ops(&self) -> OpCounts {
        self.iterations
            .iter()
            .flat_map(|it| &it.blocks)
            .fold(OpCounts::default(), |acc, b| acc.merge(&b.ffn_ops))
    }

    /// Mean first-FFN-layer output sparsity over sparse iterations
    /// (Fig. 6's "Sparsity" column).
    pub fn mean_inter_iteration_sparsity(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for b in self.iterations.iter().flat_map(|it| &it.blocks) {
            if let Some(f) = &b.ffn {
                if f.kind == IterationKind::Sparse {
                    sum += f.output_sparsity;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Mean intra-iteration (attention score) sparsity (Table I's EP row).
    pub fn mean_intra_iteration_sparsity(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for b in self.iterations.iter().flat_map(|it| &it.blocks) {
            if let Some(s) = &b.ep_stats {
                sum += s.score_sparsity;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Mean Q-projection / KV-projection skip fractions (paper: 26% / 22%).
    pub fn mean_projection_skips(&self) -> (f64, f64) {
        let mut q = 0.0;
        let mut kv = 0.0;
        let mut count = 0usize;
        for b in self.iterations.iter().flat_map(|it| &it.blocks) {
            if let Some(s) = &b.ep_stats {
                q += s.q_skip_fraction;
                kv += s.kv_skip_fraction;
                count += 1;
            }
        }
        if count == 0 {
            (0.0, 0.0)
        } else {
            (q / count as f64, kv / count as f64)
        }
    }

    /// All captured first-FFN-layer bitmasks (sparse iterations).
    pub fn ffn_masks(&self) -> Vec<&Bitmask2D> {
        self.iterations
            .iter()
            .flat_map(|it| &it.blocks)
            .filter_map(|b| b.ffn_mask.as_ref())
            .collect()
    }

    /// All captured attention keep-bitmasks.
    pub fn attention_masks(&self) -> Vec<&Bitmask2D> {
        self.iterations
            .iter()
            .flat_map(|it| &it.blocks)
            .flat_map(|b| &b.attention_masks)
            .collect()
    }

    /// Activation snapshots of transformer block `block_idx`, one per
    /// iteration (vanilla runs with hidden capture).
    pub fn hidden_snapshots(&self, block_idx: usize) -> Vec<&Matrix> {
        self.iterations
            .iter()
            .filter_map(|it| it.blocks.get(block_idx).and_then(|b| b.hidden.as_ref()))
            .collect()
    }
}

/// A benchmark generation pipeline: conditioning → DDIM loop → output.
#[derive(Debug, Clone)]
pub struct GenerationPipeline {
    config: ModelConfig,
    network: DiffusionNetwork,
    sampler: DdimSampler,
    encoder: ConditioningEncoder,
}

impl GenerationPipeline {
    /// Training-process length the DDIM trajectory is subsampled from.
    const TRAIN_STEPS: usize = 1000;

    /// Builds a pipeline for a benchmark under an execution policy. `seed`
    /// fixes the network weights.
    pub fn new(config: &ModelConfig, policy: ExecPolicy, seed: u64) -> Self {
        let network = DiffusionNetwork::new(config, policy, seed);
        let sampler = DdimSampler::new(
            DiffusionSchedule::linear(Self::TRAIN_STEPS),
            config.iterations,
        );
        let encoder = ConditioningEncoder::new(config.sim.cond_tokens.max(1), config.sim.d_model);
        Self {
            config: *config,
            network,
            sampler,
            encoder,
        }
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Runs one full generation for `prompt`, returning the output and the
    /// instrumentation report.
    pub fn generate(&mut self, prompt: &str, noise_seed: u64) -> (Matrix, RunReport) {
        self.network.reset();
        if self.config.sim.cond_tokens > 0 {
            self.network
                .set_condition(self.encoder.encode_pooled(prompt));
        }
        let shape = (self.config.sim.tokens, self.config.sim.d_model);
        let out = self.sampler.sample(&mut self.network, shape, noise_seed);
        let report = RunReport {
            iterations: self.network.take_records(),
        };
        (out, report)
    }

    /// Runs one generation with classifier-free guidance: each denoising
    /// step evaluates the network twice (unconditional and conditional) and
    /// extrapolates `ε = ε_u + w·(ε_c − ε_u)` — the standard inference recipe
    /// of the text-conditioned benchmarks, doubling per-iteration compute.
    ///
    /// `guidance_scale = 1.0` reduces exactly to conditional sampling.
    pub fn generate_guided(
        &mut self,
        prompt: &str,
        guidance_scale: f32,
        noise_seed: u64,
    ) -> (Matrix, RunReport) {
        use crate::sampler::NoisePredictor as _;
        use exion_tensor::ops;

        self.network.reset();
        let cond = self.encoder.encode_pooled(prompt);
        let uncond = vec![0.0; self.config.sim.d_model];
        let shape = (self.config.sim.tokens, self.config.sim.d_model);
        let network = &mut self.network;
        let mut predictor = |x: &Matrix, t: usize| -> Matrix {
            network.set_condition(uncond.clone());
            let e_u = network.predict_noise(x, t);
            network.set_condition(cond.clone());
            let e_c = network.predict_noise(x, t);
            ops::add(&e_u, &ops::scale(&ops::sub(&e_c, &e_u), guidance_scale))
        };
        let out = self.sampler.sample(&mut predictor, shape, noise_seed);
        let report = RunReport {
            iterations: self.network.take_records(),
        };
        (out, report)
    }

    /// Runs `count` generations with different noise seeds, returning the
    /// flattened outputs as rows (for distribution metrics like proxy-FID).
    pub fn generate_batch(&mut self, prompt: &str, count: usize, seed0: u64) -> Matrix {
        let width = self.config.sim.tokens * self.config.sim.d_model;
        let mut batch = Matrix::zeros(count, width);
        for i in 0..count {
            let (out, _) = self.generate(prompt, seed0.wrapping_add(i as u64));
            batch.row_mut(i).copy_from_slice(out.as_slice());
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use exion_tensor::stats;

    fn tiny(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind).shrunk(2, 5)
    }

    #[test]
    fn vanilla_generation_is_deterministic() {
        let config = tiny(ModelKind::Mld);
        let mut p1 = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 1);
        let mut p2 = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 1);
        let (a, ra) = p1.generate("walk forward", 7);
        let (b, _) = p2.generate("walk forward", 7);
        assert_eq!(a, b);
        assert_eq!(ra.iterations.len(), config.iterations);
    }

    #[test]
    fn ffn_reuse_schedule_appears_in_report() {
        let config = tiny(ModelKind::Mld);
        let policy = Ablation::FfnReuse.policy(&config);
        let mut p = GenerationPipeline::new(&config, policy, 2);
        let (_, report) = p.generate("jump", 3);
        let n = config.ffn_reuse.sparse_iters;
        let dense_count = report
            .iterations
            .iter()
            .flat_map(|it| &it.blocks)
            .filter(|b| matches!(b.ffn.map(|f| f.kind), Some(IterationKind::Dense)))
            .count();
        let expected_dense = config.iterations.div_ceil(n + 1) * config.sim.blocks;
        assert_eq!(dense_count, expected_dense);
        assert!(report.ffn_ops().reduction() > 0.3);
        assert!(report.mean_inter_iteration_sparsity() > 0.8);
    }

    #[test]
    fn ffn_reuse_output_close_to_vanilla() {
        let config = tiny(ModelKind::Mld);
        let mut vanilla = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 4);
        let mut reuse = GenerationPipeline::new(&config, Ablation::FfnReuse.policy(&config), 4);
        let (a, _) = vanilla.generate("spin", 5);
        let (b, _) = reuse.generate("spin", 5);
        let psnr = stats::psnr(&a, &b);
        assert!(psnr > 15.0, "PSNR vs vanilla {psnr:.1} dB");
    }

    #[test]
    fn ep_stats_collected() {
        let config = tiny(ModelKind::Mld);
        let mut p = GenerationPipeline::new(&config, Ablation::Ep.policy(&config), 6);
        let (_, report) = p.generate("wave", 7);
        let intra = report.mean_intra_iteration_sparsity();
        // MLD's top-k keeps 70% ⇒ ~30% sparsity (plus one-hot rows).
        assert!(intra >= 0.25, "intra sparsity {intra}");
        let (q_skip, kv_skip) = report.mean_projection_skips();
        assert!((0.0..=1.0).contains(&q_skip));
        assert!((0.0..=1.0).contains(&kv_skip));
    }

    #[test]
    fn mask_capture_produces_masks() {
        let config = tiny(ModelKind::Mld);
        let policy = Ablation::FfnReuseEp.policy(&config).with_mask_capture();
        let mut p = GenerationPipeline::new(&config, policy, 8);
        let (_, report) = p.generate("run", 9);
        assert!(!report.ffn_masks().is_empty());
        assert!(!report.attention_masks().is_empty());
    }

    #[test]
    fn hidden_capture_gives_one_snapshot_per_iteration() {
        let config = tiny(ModelKind::Dit);
        let policy = ExecPolicy::vanilla().with_hidden_capture();
        let mut p = GenerationPipeline::new(&config, policy, 10);
        let (_, report) = p.generate("class 207", 11);
        assert_eq!(report.hidden_snapshots(0).len(), config.iterations);
    }

    #[test]
    fn batch_generation_shapes() {
        let config = tiny(ModelKind::Mld);
        let mut p = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 12);
        let batch = p.generate_batch("hop", 3, 100);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.cols(), config.sim.tokens * config.sim.d_model);
        assert_ne!(batch.row(0), batch.row(1));
    }

    #[test]
    fn guidance_scale_one_equals_conditional_sampling() {
        let config = tiny(ModelKind::Mld);
        let mut a = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 20);
        let mut b = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 20);
        let (plain, _) = a.generate("leap", 21);
        let (guided, report) = b.generate_guided("leap", 1.0, 21);
        // ε_u + 1·(ε_c − ε_u) = ε_c exactly.
        assert!(stats::relative_error(&plain, &guided) < 1e-5);
        // CFG evaluates the network twice per iteration.
        assert_eq!(report.iterations.len(), 2 * config.iterations);
    }

    #[test]
    fn guidance_strengthens_conditioning() {
        let config = tiny(ModelKind::Mld);
        let mut p = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 22);
        let (g1, _) = p.generate_guided("leap", 1.0, 23);
        let (g5, _) = p.generate_guided("leap", 5.0, 23);
        assert_ne!(g1, g5, "guidance scale changes the output");
    }

    #[test]
    fn quant_ablation_stays_close_to_vanilla() {
        let config = tiny(ModelKind::Mld);
        let mut vanilla = GenerationPipeline::new(&config, ExecPolicy::vanilla(), 13);
        let mut quant =
            GenerationPipeline::new(&config, Ablation::FfnReuseEpQuant.policy(&config), 13);
        let (a, _) = vanilla.generate("turn", 14);
        let (b, _) = quant.generate("turn", 14);
        // All three approximations stacked still track the vanilla output.
        let psnr = stats::psnr(&a, &b);
        assert!(psnr > 8.0, "PSNR {psnr:.1} dB");
    }
}
