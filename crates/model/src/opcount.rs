//! Analytic per-iteration operation counts (paper Fig. 4).
//!
//! Fig. 4 breaks each benchmark's per-iteration operations into QKV
//! projection, attention computation, FFN layers, and "Etc." (everything
//! outside transformer blocks), and observes that FFN layers dominate the
//! transformer block because diffusion token lengths are short. The counts
//! here follow the standard convention of 2 ops (multiply + add) per MAC.

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, ScaleParams};

/// Per-iteration operation counts of one model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpBreakdown {
    /// Q/K/V and output projections.
    pub qkv: u64,
    /// Attention score (`QKᵀ`) and probability·V MMULs.
    pub attention: u64,
    /// Both FFN linear layers.
    pub ffn: u64,
    /// Everything outside transformer blocks (ResBlocks, embeddings, …).
    pub etc: u64,
}

impl OpBreakdown {
    /// Computes the per-iteration breakdown at the given scale.
    pub fn per_iteration(p: &ScaleParams, geglu: bool) -> Self {
        let n = p.tokens as u64;
        let d = p.d_model as u64;
        let d_ff = p.d_ff as u64;
        let hidden = if geglu { d_ff / 2 } else { d_ff };
        let blocks = p.blocks as u64;

        let qkv = 2 * 4 * n * d * d * blocks;
        let attention = 2 * 2 * n * n * d * blocks;
        let ffn = 2 * (n * d_ff * d + n * hidden * d) * blocks;
        let transformer = qkv + attention + ffn;
        // resblock_ops_share is Etc.'s share of the *total*:
        // etc = share / (1 - share) * transformer.
        let share = p.resblock_ops_share.clamp(0.0, 0.95);
        let etc = if share > 0.0 {
            (share / (1.0 - share) * transformer as f64) as u64
        } else {
            0
        };
        Self {
            qkv,
            attention,
            ffn,
            etc,
        }
    }

    /// Breakdown for a benchmark's paper-scale dimensions.
    pub fn for_model(config: &ModelConfig) -> Self {
        Self::per_iteration(&config.paper, config.geglu)
    }

    /// Total operations per iteration.
    pub fn total(&self) -> u64 {
        self.qkv + self.attention + self.ffn + self.etc
    }

    /// Transformer-block share of the total (Fig. 4: 38–100%).
    pub fn transformer_share(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.qkv + self.attention + self.ffn) as f64 / self.total() as f64
    }

    /// FFN share of the transformer block (Fig. 4: FFN is the main
    /// bottleneck, up to 67%).
    pub fn ffn_share_of_transformer(&self) -> f64 {
        let t = self.qkv + self.attention + self.ffn;
        if t == 0 {
            return 0.0;
        }
        self.ffn as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind, NetworkType};

    #[test]
    fn known_small_case() {
        let p = ScaleParams {
            tokens: 2,
            d_model: 4,
            heads: 1,
            d_ff: 8,
            blocks: 1,
            cond_tokens: 0,
            resblock_ops_share: 0.0,
        };
        let b = OpBreakdown::per_iteration(&p, false);
        assert_eq!(b.qkv, 2 * 4 * 2 * 4 * 4);
        assert_eq!(b.attention, 2 * 2 * 2 * 2 * 4);
        assert_eq!(b.ffn, 2 * (2 * 8 * 4 + 2 * 8 * 4));
        assert_eq!(b.etc, 0);
        assert!((b.transformer_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ffn_dominates_transformer_for_short_sequences() {
        // The paper's core observation: diffusion models have short token
        // lengths, so FFN layers dominate over attention.
        for config in ModelConfig::all() {
            let b = OpBreakdown::for_model(&config);
            assert!(
                b.ffn > b.attention,
                "{}: ffn {} vs attention {}",
                config.kind.name(),
                b.ffn,
                b.attention
            );
        }
    }

    #[test]
    fn ffn_share_in_papers_range() {
        for config in ModelConfig::all() {
            let share = OpBreakdown::for_model(&config).ffn_share_of_transformer();
            assert!(
                (0.35..=0.80).contains(&share),
                "{}: FFN share {share:.2}",
                config.kind.name()
            );
        }
    }

    #[test]
    fn transformer_share_matches_topology() {
        for config in ModelConfig::all() {
            let share = OpBreakdown::for_model(&config).transformer_share();
            match config.network {
                NetworkType::TransformerOnly => assert!((share - 1.0).abs() < 1e-9),
                _ => assert!(share < 1.0, "{}", config.kind.name()),
            }
        }
    }

    #[test]
    fn dit_is_the_largest_transformer_workload() {
        let dit = OpBreakdown::for_model(&ModelConfig::for_kind(ModelKind::Dit)).total();
        let mld = OpBreakdown::for_model(&ModelConfig::for_kind(ModelKind::Mld)).total();
        assert!(dit > 100 * mld);
    }

    #[test]
    fn geglu_counts_double_width_first_layer() {
        let p = ScaleParams {
            tokens: 4,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            blocks: 1,
            cond_tokens: 0,
            resblock_ops_share: 0.0,
        };
        let gelu = OpBreakdown::per_iteration(&p, false).ffn;
        let geglu = OpBreakdown::per_iteration(&p, true).ffn;
        // GEGLU halves the second layer's input width.
        assert!(geglu < gelu);
    }
}
