//! The transformer block of paper Fig. 3(b), with switchable execution
//! policies.
//!
//! Every block runs the canonical sequence — LayerNorm, multi-head attention
//! (QKV projection, scaled dot-product, output projection), residual add,
//! LayerNorm, FFN, residual add — and can execute each stage:
//!
//! * **vanilla** (dense f32),
//! * with **FFN-Reuse** (`exion_core::ffn_reuse`) on the FFN pair,
//! * with **eager prediction** (`exion_core::ep`) on the attention path:
//!   a log-domain EPRE pass predicts Q', K' and the attention score, then the
//!   real-domain pass computes only the plan's surviving elements,
//! * with **INT12 post-training quantization** on every MMUL operand
//!   (quantize→dequantize round trips, numerically equivalent to the SDUE's
//!   integer datapath with scale factors).

use exion_core::ep::{
    execute_dense_attention, execute_sparse_attention, log_matmul, AttentionPlan, EpConfig, EpStats,
};
use exion_core::ffn_reuse::{FfnIterationReport, FfnReuseConfig, FfnReuseEngine, FfnWeights};
use exion_core::{Bitmask2D, OpCounts};
use exion_tensor::norm::layer_norm;
use exion_tensor::{ops, Activation, IntWidth, Matrix, QuantMatrix, QuantParams};

use crate::config::ScaleParams;

/// How the pipeline executes transformer blocks — the paper's ablation axes
/// (Table I rows: Vanilla / FFN-Reuse / +EP / +Quant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// FFN-Reuse configuration (None = dense FFN every iteration).
    pub ffn_reuse: Option<FfnReuseConfig>,
    /// Eager-prediction configuration (None = dense attention).
    pub ep: Option<EpConfig>,
    /// INT12 post-training quantization of MMUL operands.
    pub quant: bool,
    /// Capture full activation snapshots (Fig. 7) — vanilla runs only.
    pub capture_hidden: bool,
    /// Capture output bitmasks for ConMerge analysis (Figs. 8–9, 17).
    pub capture_masks: bool,
}

impl ExecPolicy {
    /// Dense baseline.
    pub fn vanilla() -> Self {
        Self {
            ffn_reuse: None,
            ep: None,
            quant: false,
            capture_hidden: false,
            capture_masks: false,
        }
    }

    /// FFN-Reuse only (the paper's second ablation row).
    pub fn with_ffn_reuse(mut self, config: FfnReuseConfig) -> Self {
        self.ffn_reuse = Some(config);
        self
    }

    /// Adds eager prediction (the paper's third ablation row).
    pub fn with_ep(mut self, config: EpConfig) -> Self {
        self.ep = Some(config);
        self
    }

    /// Adds INT12 PTQ (the paper's fourth ablation row).
    pub fn with_quant(mut self) -> Self {
        self.quant = true;
        self
    }

    /// Enables activation snapshots.
    pub fn with_hidden_capture(mut self) -> Self {
        self.capture_hidden = true;
        self
    }

    /// Enables bitmask capture.
    pub fn with_mask_capture(mut self) -> Self {
        self.capture_masks = true;
        self
    }
}

/// All weights of one transformer block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeights {
    /// Query projection (`d_model × d_model`).
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection.
    pub wv: Matrix,
    /// Output projection.
    pub wo: Matrix,
    /// FFN weights.
    pub ffn: FfnWeights,
    /// Pre-attention LayerNorm scale/shift.
    pub ln1: (Vec<f32>, Vec<f32>),
    /// Pre-FFN LayerNorm scale/shift.
    pub ln2: (Vec<f32>, Vec<f32>),
    /// Attention heads.
    pub heads: usize,
}

impl BlockWeights {
    /// Xavier-initialized block weights.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn random(params: &ScaleParams, geglu: bool, seed: u64) -> Self {
        assert_eq!(
            params.d_model % params.heads,
            0,
            "d_model must divide into heads"
        );
        let d = params.d_model;
        let act = if geglu {
            Activation::Geglu
        } else {
            Activation::Gelu
        };
        // Residual-branch output projections are scaled down (GPT-2-style
        // 1/sqrt(2L) initialization). With unscaled random weights, the
        // near-uniform attention of an untrained block injects an identical
        // vector into every token's residual stream, artificially correlating
        // all token rows — which would corrupt the sparsity-structure
        // measurements (Figs. 7–9, 17).
        let residual_scale = 1.0 / (2.0 * params.blocks.max(1) as f32).sqrt() * 0.5;
        let mut ffn = FfnWeights::random(d, params.d_ff, act, seed.wrapping_add(4));
        ffn.w2 = ops::scale(&ffn.w2, residual_scale);
        Self {
            wq: exion_tensor::rng::xavier_uniform(d, d, seed),
            wk: exion_tensor::rng::xavier_uniform(d, d, seed.wrapping_add(1)),
            wv: exion_tensor::rng::xavier_uniform(d, d, seed.wrapping_add(2)),
            wo: ops::scale(
                &exion_tensor::rng::xavier_uniform(d, d, seed.wrapping_add(3)),
                residual_scale,
            ),
            ffn,
            ln1: (vec![1.0; d], vec![0.0; d]),
            ln2: (vec![1.0; d], vec![0.0; d]),
            heads: params.heads,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.wq.rows()
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model() / self.heads
    }
}

/// Instrumentation emitted by one block execution.
#[derive(Debug, Clone, Default)]
pub struct BlockReport {
    /// FFN-Reuse iteration report (None when running dense FFN).
    pub ffn: Option<FfnIterationReport>,
    /// Eager-prediction statistics averaged over heads (None without EP).
    pub ep_stats: Option<EpStats>,
    /// QKV + output projection MACs (performed vs dense).
    pub qkv_ops: OpCounts,
    /// Attention score + probability·V MACs (performed vs dense).
    pub attention_ops: OpCounts,
    /// FFN MACs (performed vs dense).
    pub ffn_ops: OpCounts,
    /// First-FFN-layer output bitmask (FFN-Reuse sparse iterations with mask
    /// capture).
    pub ffn_mask: Option<Bitmask2D>,
    /// Per-head attention keep bitmasks (EP with mask capture).
    pub attention_masks: Vec<Bitmask2D>,
    /// Full activation output of the FFN non-linearity (vanilla runs with
    /// hidden capture).
    pub hidden: Option<Matrix>,
}

impl BlockReport {
    /// Total MACs performed vs dense across all MMUL stages.
    pub fn total_ops(&self) -> OpCounts {
        self.qkv_ops.merge(&self.attention_ops).merge(&self.ffn_ops)
    }
}

/// A stateful transformer block (owns its FFN-Reuse engine across diffusion
/// iterations).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    weights: BlockWeights,
    ffn_engine: Option<FfnReuseEngine>,
}

impl TransformerBlock {
    /// Wraps block weights.
    pub fn new(weights: BlockWeights) -> Self {
        Self {
            weights,
            ffn_engine: None,
        }
    }

    /// The block's weights.
    pub fn weights(&self) -> &BlockWeights {
        &self.weights
    }

    /// Resets FFN-Reuse state (next iteration runs dense).
    pub fn reset(&mut self) {
        self.ffn_engine = None;
    }

    /// Executes the block on `x` (`tokens × d_model`) under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s width differs from the block's `d_model`.
    pub fn forward(&mut self, x: &Matrix, policy: &ExecPolicy) -> (Matrix, BlockReport) {
        assert_eq!(x.cols(), self.weights.d_model(), "input width mismatch");
        let mut report = BlockReport::default();

        // --- Multi-head attention ---------------------------------------
        let normed = layer_norm(x, &self.weights.ln1.0, &self.weights.ln1.1, 1e-5);
        let attn_out = self.attention(&normed, policy, &mut report);
        let x = ops::add(x, &attn_out);

        // --- FFN ----------------------------------------------------------
        let normed = layer_norm(&x, &self.weights.ln2.0, &self.weights.ln2.1, 1e-5);
        let ffn_in = if policy.quant {
            quantize_roundtrip(&normed)
        } else {
            normed
        };
        let ffn_out = match policy.ffn_reuse {
            Some(config) => {
                let engine = self
                    .ffn_engine
                    .get_or_insert_with(|| FfnReuseEngine::new(config));
                let (out, ffn_report) = engine.forward(&ffn_in, &self.weights.ffn);
                report.ffn_ops = ffn_report.ops;
                if policy.capture_masks {
                    report.ffn_mask = engine.bitmask().cloned();
                }
                report.ffn = Some(ffn_report);
                out
            }
            None => {
                let hidden = self.weights.ffn.hidden_dense(&ffn_in);
                let out = ops::add_bias(
                    &ops::matmul(&hidden, &self.weights.ffn.w2),
                    &self.weights.ffn.b2,
                );
                let n = ffn_in.rows() as u64;
                let d = self.weights.d_model() as u64;
                let dense = n * self.weights.ffn.d_ff() as u64 * d
                    + n * self.weights.ffn.hidden_cols() as u64 * d;
                report.ffn_ops = OpCounts::new(dense, dense);
                if policy.capture_hidden {
                    report.hidden = Some(hidden);
                }
                out
            }
        };
        (ops::add(&x, &ffn_out), report)
    }

    /// Multi-head attention with optional EP and quantization.
    fn attention(&self, h: &Matrix, policy: &ExecPolicy, report: &mut BlockReport) -> Matrix {
        let n = h.rows();
        let d = self.weights.d_model();
        let heads = self.weights.heads;
        let dh = self.weights.d_head();
        let inv_sqrt_dh = 1.0 / (dh as f32).sqrt();

        // Eager prediction runs first, from the *input* of the projections
        // (the EPRE's own log-domain pass), producing per-head plans.
        let plans: Option<Vec<AttentionPlan>> = policy
            .ep
            .map(|ep| self.predict_plans(h, &ep, heads, dh, inv_sqrt_dh));

        // Real-domain projections (PTQ round-trips model the INT12 SDUE).
        let (hq, wq, wk, wv) = if policy.quant {
            (
                quantize_roundtrip(h),
                quantize_roundtrip(&self.weights.wq),
                quantize_roundtrip(&self.weights.wk),
                quantize_roundtrip(&self.weights.wv),
            )
        } else {
            (
                h.clone(),
                self.weights.wq.clone(),
                self.weights.wk.clone(),
                self.weights.wv.clone(),
            )
        };
        let q = ops::matmul(&hq, &wq);
        let k = ops::matmul(&hq, &wk);
        let v = ops::matmul(&hq, &wv);

        // Projection op accounting: Q rows skip when every head one-hots the
        // row; K/V columns skip when no head uses the token.
        let proj = (n * d * d) as u64;
        let dense_qkv = 4 * proj; // q, k, v, output
        let performed_qkv = match &plans {
            Some(plans) => {
                let q_skipped = (0..n)
                    .filter(|&r| plans.iter().all(|p| p.one_hot()[r].is_some()))
                    .count() as u64;
                let kv_skipped = (0..n)
                    .filter(|&c| plans.iter().all(|p| !p.col_used()[c]))
                    .count() as u64;
                let q_ops = (n as u64 - q_skipped) * (d * d) as u64;
                let kv_ops = 2 * (n as u64 - kv_skipped) * (d * d) as u64;
                q_ops + kv_ops + proj
            }
            None => dense_qkv,
        };
        report.qkv_ops = OpCounts::new(performed_qkv, dense_qkv);

        // Per-head attention.
        let mut concat = Matrix::zeros(n, d);
        let mut attn_ops = OpCounts::default();
        let mut ep_acc = EpStats::default();
        for head in 0..heads {
            let qh = q.submatrix(0, head * dh, n, dh);
            let kh = k.submatrix(0, head * dh, n, dh);
            let vh = v.submatrix(0, head * dh, n, dh);
            let out_h = match &plans {
                Some(plans) => {
                    let plan = &plans[head];
                    let r = execute_sparse_attention(&qh, &kh, &vh, plan, inv_sqrt_dh);
                    attn_ops = attn_ops.merge(&r.ops);
                    let s = plan.stats();
                    ep_acc.score_sparsity += s.score_sparsity / heads as f64;
                    ep_acc.one_hot_rows += s.one_hot_rows;
                    ep_acc.q_skip_fraction += s.q_skip_fraction / heads as f64;
                    ep_acc.kv_skip_fraction += s.kv_skip_fraction / heads as f64;
                    if policy.capture_masks {
                        report.attention_masks.push(plan.keep().clone());
                    }
                    r.out
                }
                None => {
                    let dense = 2 * (n * n * dh) as u64;
                    attn_ops = attn_ops.merge(&OpCounts::new(dense, dense));
                    execute_dense_attention(&qh, &kh, &vh, inv_sqrt_dh)
                }
            };
            for r in 0..n {
                concat.row_mut(r)[head * dh..(head + 1) * dh].copy_from_slice(out_h.row(r));
            }
        }
        report.attention_ops = attn_ops;
        if plans.is_some() {
            report.ep_stats = Some(ep_acc);
        }

        let wo = if policy.quant {
            quantize_roundtrip(&self.weights.wo)
        } else {
            self.weights.wo.clone()
        };
        ops::matmul(&concat, &wo)
    }

    /// The EPRE pass: log-domain Q'/K' projections, re-quantization, and
    /// per-head score prediction.
    fn predict_plans(
        &self,
        h: &Matrix,
        ep: &EpConfig,
        heads: usize,
        dh: usize,
        inv_sqrt_dh: f32,
    ) -> Vec<AttentionPlan> {
        let xq = QuantMatrix::quantize(h, IntWidth::Int12);
        let wq = QuantMatrix::quantize(&self.weights.wq, IntWidth::Int12);
        let wk = QuantMatrix::quantize(&self.weights.wk, IntWidth::Int12);
        let q_pred = log_matmul(&xq, &wq, ep.lod, ep.accum);
        let k_pred = log_matmul(&xq, &wk, ep.lod, ep.accum);
        let proj_scale = xq.params().scale * wq.params().scale;
        let (q12, q_scale) = requantize(&q_pred, proj_scale);
        let proj_scale_k = xq.params().scale * wk.params().scale;
        let (k12, k_scale) = requantize(&k_pred, proj_scale_k);

        (0..heads)
            .map(|head| {
                let qh = slice_cols(&q12, head * dh, dh);
                let kh = slice_cols(&k12, head * dh, dh);
                let score_scale = q_scale * k_scale * inv_sqrt_dh;
                AttentionPlan::predict(&qh, &kh, score_scale, ep)
            })
            .collect()
    }
}

/// INT12 quantize→dequantize round trip (PTQ simulation of one MMUL operand).
pub fn quantize_roundtrip(m: &Matrix) -> Matrix {
    QuantMatrix::quantize(m, IntWidth::Int12).dequantize()
}

/// Re-quantizes log-domain prediction integers back to INT12, preserving the
/// real-valued scale (`value ≈ int12 * scale`).
fn requantize(scores: &exion_core::ep::LogScores, in_scale: f32) -> (QuantMatrix, f32) {
    let rows = scores.rows();
    let cols = scores.cols();
    let max_abs = (0..rows)
        .flat_map(|r| scores.row(r).iter().copied())
        .map(i64::abs)
        .max()
        .unwrap_or(0);
    let max_q = IntWidth::Int12.max_value() as i64;
    let shrink = (max_abs / max_q) + 1; // integer downscale factor ≥ 1
    let data: Vec<i32> = (0..rows)
        .flat_map(|r| scores.row(r).iter().map(|&s| (s / shrink) as i32))
        .collect();
    let params = QuantParams {
        scale: 1.0, // integer-domain matrix; scale carried separately
        width: IntWidth::Int12,
    };
    (
        QuantMatrix::from_parts(rows, cols, data, params),
        in_scale * shrink as f32,
    )
}

/// Column slice of a quantized matrix (per-head view).
fn slice_cols(m: &QuantMatrix, c0: usize, width: usize) -> QuantMatrix {
    let data: Vec<i32> = (0..m.rows())
        .flat_map(|r| (0..width).map(move |j| m.get(r, c0 + j)))
        .collect();
    QuantMatrix::from_parts(m.rows(), width, data, m.params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_tensor::rng::seeded_uniform;
    use exion_tensor::stats;

    fn params() -> ScaleParams {
        ScaleParams {
            tokens: 12,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            blocks: 1,
            cond_tokens: 0,
            resblock_ops_share: 0.0,
        }
    }

    fn input(seed: u64) -> Matrix {
        seeded_uniform(12, 16, -1.0, 1.0, seed)
    }

    #[test]
    fn vanilla_forward_preserves_shape_and_is_deterministic() {
        let w = BlockWeights::random(&params(), false, 1);
        let mut b1 = TransformerBlock::new(w.clone());
        let mut b2 = TransformerBlock::new(w);
        let x = input(2);
        let (y1, r) = b1.forward(&x, &ExecPolicy::vanilla());
        let (y2, _) = b2.forward(&x, &ExecPolicy::vanilla());
        assert_eq!(y1.shape(), x.shape());
        assert_eq!(y1, y2);
        assert_eq!(r.total_ops().reduction(), 0.0);
    }

    #[test]
    fn residual_path_dominates_small_weights() {
        // A transformer block is residual: output correlates with input.
        let w = BlockWeights::random(&params(), false, 3);
        let mut b = TransformerBlock::new(w);
        let x = input(4);
        let (y, _) = b.forward(&x, &ExecPolicy::vanilla());
        let cos = stats::cosine_similarity(x.as_slice(), y.as_slice());
        assert!(cos > 0.5, "residual cosine {cos}");
    }

    #[test]
    fn ffn_reuse_reduces_ops_after_dense_iteration() {
        let w = BlockWeights::random(&params(), false, 5);
        let mut b = TransformerBlock::new(w);
        let policy =
            ExecPolicy::vanilla().with_ffn_reuse(FfnReuseConfig::with_target_sparsity(0.9, 3));
        let x = input(6);
        let (_, r0) = b.forward(&x, &policy);
        let (_, r1) = b.forward(&x, &policy);
        assert_eq!(r0.ffn_ops.reduction(), 0.0);
        assert!(r1.ffn_ops.reduction() > 0.5);
        assert!(r1.ffn.expect("ffn report").output_sparsity > 0.8);
    }

    #[test]
    fn ffn_reuse_output_tracks_vanilla_on_similar_inputs() {
        let w = BlockWeights::random(&params(), false, 7);
        let mut reuse_block = TransformerBlock::new(w.clone());
        let mut vanilla_block = TransformerBlock::new(w);
        let policy =
            ExecPolicy::vanilla().with_ffn_reuse(FfnReuseConfig::with_target_sparsity(0.85, 4));
        let x = input(8);
        let _ = reuse_block.forward(&x, &policy);
        let x2 = x.map(|v| v + 0.02);
        let (y_reuse, _) = reuse_block.forward(&x2, &policy);
        let (y_exact, _) = vanilla_block.forward(&x2, &ExecPolicy::vanilla());
        let err = stats::relative_error(&y_exact, &y_reuse);
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn ep_reduces_attention_and_projection_ops() {
        let w = BlockWeights::random(&params(), false, 9);
        let mut b = TransformerBlock::new(w);
        let policy = ExecPolicy::vanilla().with_ep(EpConfig::new(0.5, 0.25));
        let (_, r) = b.forward(&input(10), &policy);
        assert!(r.attention_ops.reduction() > 0.5);
        let s = r.ep_stats.expect("ep stats");
        assert!(s.score_sparsity > 0.5);
        // Output projection always runs, so qkv reduction is bounded.
        assert!(r.qkv_ops.performed <= r.qkv_ops.dense);
    }

    #[test]
    fn ep_output_stays_close_with_generous_top_k() {
        let w = BlockWeights::random(&params(), false, 11);
        let mut ep_block = TransformerBlock::new(w.clone());
        let mut vanilla_block = TransformerBlock::new(w);
        let x = input(12);
        let (y_ep, _) = ep_block.forward(
            &x,
            &ExecPolicy::vanilla().with_ep(EpConfig::new(f32::INFINITY, 0.9)),
        );
        let (y_dense, _) = vanilla_block.forward(&x, &ExecPolicy::vanilla());
        let err = stats::relative_error(&y_dense, &y_ep);
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn quantization_is_close_to_fp32() {
        let w = BlockWeights::random(&params(), false, 13);
        let mut q_block = TransformerBlock::new(w.clone());
        let mut f_block = TransformerBlock::new(w);
        let x = input(14);
        let (yq, _) = q_block.forward(&x, &ExecPolicy::vanilla().with_quant());
        let (yf, _) = f_block.forward(&x, &ExecPolicy::vanilla());
        let err = stats::relative_error(&yf, &yq);
        assert!(err < 0.02, "quantization error {err}");
    }

    #[test]
    fn mask_capture_provides_bitmasks() {
        let w = BlockWeights::random(&params(), false, 15);
        let mut b = TransformerBlock::new(w);
        let policy = ExecPolicy::vanilla()
            .with_ffn_reuse(FfnReuseConfig::with_target_sparsity(0.9, 2))
            .with_ep(EpConfig::new(0.5, 0.3))
            .with_mask_capture();
        let x = input(16);
        let (_, _) = b.forward(&x, &policy);
        let (_, r) = b.forward(&x, &policy);
        let mask = r.ffn_mask.expect("ffn mask captured");
        assert_eq!(mask.shape(), (12, 32));
        assert_eq!(r.attention_masks.len(), 2); // one per head
        assert_eq!(r.attention_masks[0].shape(), (12, 12));
    }

    #[test]
    fn hidden_capture_in_vanilla_mode() {
        let w = BlockWeights::random(&params(), false, 17);
        let mut b = TransformerBlock::new(w);
        let (_, r) = b.forward(&input(18), &ExecPolicy::vanilla().with_hidden_capture());
        assert_eq!(r.hidden.expect("hidden").shape(), (12, 32));
    }

    #[test]
    fn geglu_block_works() {
        let w = BlockWeights::random(&params(), true, 19);
        let mut b = TransformerBlock::new(w);
        let (y, r) = b.forward(&input(20), &ExecPolicy::vanilla());
        assert_eq!(y.shape(), (12, 16));
        assert!(r.ffn_ops.dense > 0);
    }
}
