//! # exion-model
//!
//! The diffusion-workload substrate of the EXION reproduction.
//!
//! The paper evaluates on seven pre-trained diffusion models (MLD, MDM, EDGE,
//! Make-an-Audio, Stable Diffusion, DiT, VideoCrafter2). Those checkpoints and
//! their Python runtimes are not available here, so this crate implements the
//! *architectural* equivalent from scratch (see DESIGN.md §1 for the
//! substitution argument):
//!
//! * [`config`] — the seven benchmark configurations, each with *paper-scale*
//!   dimensions (analytic op counting, Fig. 4) and *sim-scale* dimensions
//!   (functional runs) plus the paper's per-model FFN-Reuse and
//!   eager-prediction settings (Table I / Fig. 6);
//! * [`transformer`] — transformer blocks (Fig. 3(b)) whose attention and FFN
//!   paths can run vanilla, with FFN-Reuse, with eager prediction, and with
//!   INT12 post-training quantization;
//! * [`network`] — the three network topologies of Fig. 3(a): UNet without
//!   ResBlocks (Type 1), UNet with ResBlocks (Type 2), transformer-only
//!   (Type 3);
//! * [`schedule`] / [`sampler`] — DDPM noise schedules and the DDIM reverse
//!   denoising loop that creates the inter-iteration redundancy FFN-Reuse
//!   exploits;
//! * [`conditioning`] — a seeded stand-in for CLIP/CLAP conditioning
//!   embeddings;
//! * [`opcount`] — analytic per-layer operation counts (Fig. 4);
//! * [`pipeline`] — end-to-end generation with instrumentation hooks used by
//!   every accuracy and sparsity experiment.

pub mod conditioning;
pub mod config;
pub mod network;
pub mod opcount;
pub mod pipeline;
pub mod sampler;
pub mod schedule;
pub mod transformer;

pub use config::{IterationPhase, ModelConfig, ModelKind, NetworkType, ScaleParams};
pub use pipeline::{Ablation, GenerationPipeline, RunReport};
pub use transformer::ExecPolicy;
