//! Reverse-denoising samplers (the inference loop of paper Fig. 2).
//!
//! The samplers drive a [`NoisePredictor`] (the diffusion network) from pure
//! noise back to data. The slowly-changing input across adjacent timesteps is
//! what creates the inter-iteration redundancy FFN-Reuse exploits, so the
//! loop here is a real DDIM/DDPM process, not a stub.

use exion_tensor::rng::seeded_normal;
use exion_tensor::{ops, Matrix};

use crate::schedule::DiffusionSchedule;

/// A denoising network: predicts the noise content of `x_t` at timestep `t`.
pub trait NoisePredictor {
    /// Predicts ε for the given noisy input (`tokens × d_model`).
    fn predict_noise(&mut self, x: &Matrix, t: usize) -> Matrix;
}

impl<F> NoisePredictor for F
where
    F: FnMut(&Matrix, usize) -> Matrix,
{
    fn predict_noise(&mut self, x: &Matrix, t: usize) -> Matrix {
        self(x, t)
    }
}

/// Deterministic DDIM sampler over a sub-sampled timestep trajectory.
#[derive(Debug, Clone)]
pub struct DdimSampler {
    schedule: DiffusionSchedule,
    timesteps: Vec<usize>,
}

impl DdimSampler {
    /// Creates a sampler taking `inference_steps` evenly spaced steps through
    /// `schedule` (descending timestep order).
    ///
    /// # Panics
    ///
    /// Panics if `inference_steps` is 0 or exceeds the schedule length.
    pub fn new(schedule: DiffusionSchedule, inference_steps: usize) -> Self {
        assert!(
            inference_steps > 0 && inference_steps <= schedule.steps(),
            "inference steps {inference_steps} invalid for schedule of {}",
            schedule.steps()
        );
        let total = schedule.steps();
        let stride = total as f64 / inference_steps as f64;
        let mut timesteps: Vec<usize> = (0..inference_steps)
            .map(|i| ((i as f64 + 0.5) * stride) as usize)
            .map(|t| t.min(total - 1))
            .collect();
        timesteps.sort_unstable();
        timesteps.dedup();
        timesteps.reverse();
        Self {
            schedule,
            timesteps,
        }
    }

    /// The descending timestep trajectory.
    pub fn timesteps(&self) -> &[usize] {
        &self.timesteps
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &DiffusionSchedule {
        &self.schedule
    }

    /// Runs the full reverse process from seeded Gaussian noise, invoking
    /// `observer` after every denoising iteration with
    /// `(iteration index, timestep, current x)`.
    pub fn sample_with_observer(
        &self,
        predictor: &mut dyn NoisePredictor,
        shape: (usize, usize),
        seed: u64,
        mut observer: impl FnMut(usize, usize, &Matrix),
    ) -> Matrix {
        let mut x = seeded_normal(shape.0, shape.1, 1.0, seed);
        for (i, &t) in self.timesteps.iter().enumerate() {
            let eps = predictor.predict_noise(&x, t);
            x = self.step(&x, &eps, i);
            observer(i, t, &x);
        }
        x
    }

    /// Runs the full reverse process from seeded Gaussian noise.
    pub fn sample(
        &self,
        predictor: &mut dyn NoisePredictor,
        shape: (usize, usize),
        seed: u64,
    ) -> Matrix {
        self.sample_with_observer(predictor, shape, seed, |_, _, _| {})
    }

    /// One deterministic DDIM update from trajectory position `i`
    /// (timestep `timesteps[i]`) to position `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or shapes mismatch.
    pub fn step(&self, x: &Matrix, eps: &Matrix, i: usize) -> Matrix {
        assert!(i < self.timesteps.len(), "trajectory index out of range");
        assert_eq!(x.shape(), eps.shape(), "noise shape mismatch");
        let t = self.timesteps[i];
        let abar_t = self.schedule.alpha_bar(t);
        let abar_prev = if i + 1 < self.timesteps.len() {
            self.schedule.alpha_bar(self.timesteps[i + 1])
        } else {
            1.0
        };
        // x0 = (x_t − √(1−ᾱ_t)·ε) / √ᾱ_t, clamped against the √ᾱ→0 blowup.
        let sqrt_abar = abar_t.sqrt().max(1e-4);
        let x0 = x.zip_map(eps, |xv, ev| (xv - (1.0 - abar_t).sqrt() * ev) / sqrt_abar);
        // x_{t-1} = √ᾱ_prev · x0 + √(1−ᾱ_prev) · ε
        ops::add(
            &ops::scale(&x0, abar_prev.sqrt()),
            &ops::scale(eps, (1.0 - abar_prev).sqrt()),
        )
    }
}

/// Stochastic ancestral DDPM sampler (used by the MDM-style benchmarks).
#[derive(Debug, Clone)]
pub struct DdpmSampler {
    schedule: DiffusionSchedule,
}

impl DdpmSampler {
    /// Creates a sampler over every timestep of `schedule`.
    pub fn new(schedule: DiffusionSchedule) -> Self {
        Self { schedule }
    }

    /// Runs the full reverse process from seeded Gaussian noise.
    pub fn sample(
        &self,
        predictor: &mut dyn NoisePredictor,
        shape: (usize, usize),
        seed: u64,
    ) -> Matrix {
        let mut x = seeded_normal(shape.0, shape.1, 1.0, seed);
        for t in (0..self.schedule.steps()).rev() {
            let eps = predictor.predict_noise(&x, t);
            x = self.step(&x, &eps, t, seed.wrapping_add(t as u64 + 1));
        }
        x
    }

    /// One ancestral update at timestep `t` with seeded noise injection.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `t` is out of range.
    pub fn step(&self, x: &Matrix, eps: &Matrix, t: usize, noise_seed: u64) -> Matrix {
        assert_eq!(x.shape(), eps.shape(), "noise shape mismatch");
        let beta = self.schedule.beta(t);
        let alpha = self.schedule.alpha(t);
        let abar = self.schedule.alpha_bar(t);
        let coeff = beta / (1.0 - abar).sqrt().max(1e-6);
        let mean = x.zip_map(eps, |xv, ev| (xv - coeff * ev) / alpha.sqrt());
        if t == 0 {
            return mean;
        }
        let noise = seeded_normal(x.rows(), x.cols(), 1.0, noise_seed);
        ops::add(&mean, &ops::scale(&noise, beta.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A predictor that always answers "the input is pure noise".
    fn identity_predictor() -> impl FnMut(&Matrix, usize) -> Matrix {
        |x: &Matrix, _t: usize| x.clone()
    }

    #[test]
    fn ddim_trajectory_is_descending_and_correct_length() {
        let s = DdimSampler::new(DiffusionSchedule::linear(1000), 50);
        assert_eq!(s.timesteps().len(), 50);
        for w in s.timesteps().windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn ddim_sampling_is_deterministic() {
        let sampler = DdimSampler::new(DiffusionSchedule::linear(100), 10);
        let mut p1 = identity_predictor();
        let mut p2 = identity_predictor();
        let a = sampler.sample(&mut p1, (4, 8), 7);
        let b = sampler.sample(&mut p2, (4, 8), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_predictor_recovers_x0_exactly() {
        // The defining DDIM property: a predictor that reports the true noise
        // content relative to a target x0 makes the sampler converge to x0.
        let schedule = DiffusionSchedule::linear(1000);
        let sampler = DdimSampler::new(schedule.clone(), 50);
        let x0 = exion_tensor::rng::seeded_uniform(4, 8, -1.0, 1.0, 11);
        let mut oracle = |x: &Matrix, t: usize| -> Matrix {
            let abar = schedule.alpha_bar(t);
            x.zip_map(&x0, |xt, x0v| {
                (xt - abar.sqrt() * x0v) / (1.0 - abar).sqrt()
            })
        };
        let out = sampler.sample(&mut oracle, (4, 8), 5);
        let err = exion_tensor::stats::relative_error(&x0, &out);
        assert!(err < 0.01, "relative error {err}");
    }

    #[test]
    fn observer_sees_every_iteration() {
        let sampler = DdimSampler::new(DiffusionSchedule::linear(100), 10);
        let mut seen = Vec::new();
        let mut p = identity_predictor();
        let _ = sampler.sample_with_observer(&mut p, (2, 4), 1, |i, t, _| seen.push((i, t)));
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0].0, 0);
        assert!(seen[0].1 > seen[9].1);
    }

    #[test]
    fn adjacent_iterations_change_slowly() {
        // The foundational FFN-Reuse property: successive x_t are similar.
        let sampler = DdimSampler::new(DiffusionSchedule::linear(1000), 50);
        let mut prev: Option<Matrix> = None;
        let mut min_cos = 1.0f64;
        let mut p = identity_predictor();
        let _ = sampler.sample_with_observer(&mut p, (8, 16), 5, |i, _, x| {
            if let Some(ref pv) = prev {
                if i > 2 {
                    let cos = exion_tensor::stats::cosine_similarity(pv.as_slice(), x.as_slice());
                    min_cos = min_cos.min(cos);
                }
            }
            prev = Some(x.clone());
        });
        assert!(min_cos > 0.95, "min adjacent cosine {min_cos}");
    }

    #[test]
    fn ddpm_is_deterministic_given_seed() {
        let sampler = DdpmSampler::new(DiffusionSchedule::linear(50));
        let mut p1 = identity_predictor();
        let mut p2 = identity_predictor();
        assert_eq!(
            sampler.sample(&mut p1, (2, 4), 9),
            sampler.sample(&mut p2, (2, 4), 9)
        );
    }

    #[test]
    #[should_panic(expected = "inference steps")]
    fn ddim_rejects_oversampled_trajectory() {
        let _ = DdimSampler::new(DiffusionSchedule::linear(10), 20);
    }
}
