//! Self-metering: wall-clock accumulators for scoped timing of simulator
//! phases (cluster stepping, planner scoring).
//!
//! Wall-clock readings are inherently non-deterministic, so nothing here
//! may enter a simulation report that determinism tests compare — the
//! serving simulator keeps its `RunProfile` beside the report, not inside
//! it.

use std::time::{Duration, Instant};

/// Accumulates wall-clock time over any number of scoped laps.
///
/// ```
/// use exion_telemetry::StopWatch;
/// let mut watch = StopWatch::new();
/// let t0 = std::time::Instant::now();
/// let sum: u64 = (0..1000u64).sum();
/// watch.add(t0.elapsed());
/// assert_eq!(watch.laps(), 1);
/// assert!(watch.wall_ms() >= 0.0 && sum > 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StopWatch {
    nanos: u64,
    laps: u64,
}

impl StopWatch {
    /// A zeroed stopwatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one lap of `elapsed` wall-clock time.
    pub fn add(&mut self, elapsed: Duration) {
        self.nanos = self.nanos.saturating_add(elapsed.as_nanos() as u64);
        self.laps += 1;
    }

    /// Times `f` as one lap and returns its result.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(t0.elapsed());
        r
    }

    /// Accumulated wall-clock milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Laps recorded.
    pub fn laps(&self) -> u64 {
        self.laps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate() {
        let mut w = StopWatch::new();
        assert_eq!(w.wall_ms(), 0.0);
        let x = w.time(|| 21 * 2);
        assert_eq!(x, 42);
        w.add(Duration::from_millis(2));
        assert_eq!(w.laps(), 2);
        assert!(w.wall_ms() >= 2.0);
    }
}
