//! A small insertion-ordered counter/gauge registry.
//!
//! The serving loop keeps one [`Registry`] of cluster-level counters
//! (arrivals, completions, sheds, …) and gauges (queue depth, in-flight
//! rows) and snapshots it at epoch boundaries into the report's
//! time-series. Names are `&'static str` and lookup is a linear scan —
//! registries hold a handful of entries and the snapshot order must be
//! deterministic (first registration wins), so a hash map buys nothing.

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Metric {
    /// Monotone accumulator.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
}

/// An insertion-ordered set of named counters and gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(&'static str, Metric)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, registering it at zero first if
    /// unseen. Registering every counter with `delta = 0` up front pins
    /// the snapshot order.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a gauge.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        for (n, m) in &mut self.entries {
            if *n == name {
                match m {
                    Metric::Counter(c) => *c += delta,
                    Metric::Gauge(_) => panic!("{name:?} is a gauge, not a counter"),
                }
                return;
            }
        }
        self.entries.push((name, Metric::Counter(delta)));
    }

    /// Sets gauge `name` to `value`, registering it if unseen.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a counter.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        for (n, m) in &mut self.entries {
            if *n == name {
                match m {
                    Metric::Gauge(g) => *g = value,
                    Metric::Counter(_) => panic!("{name:?} is a counter, not a gauge"),
                }
                return;
            }
        }
        self.entries.push((name, Metric::Gauge(value)));
    }

    /// The current value of `name` (counters as `f64`), if registered.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c as f64,
                Metric::Gauge(g) => *g,
            })
    }

    /// Every `(name, value)` in registration order — the deterministic
    /// snapshot epoch boundaries record.
    pub fn snapshot(&self) -> Vec<(&'static str, f64)> {
        self.entries
            .iter()
            .map(|(n, m)| {
                (
                    *n,
                    match m {
                        Metric::Counter(c) => *c as f64,
                        Metric::Gauge(g) => *g,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = Registry::new();
        r.counter_add("completed", 0);
        r.gauge_set("queue_depth", 3.0);
        r.counter_add("completed", 2);
        r.counter_add("completed", 1);
        r.gauge_set("queue_depth", 1.0);
        assert_eq!(r.get("completed"), Some(3.0));
        assert_eq!(r.get("queue_depth"), Some(1.0));
        assert_eq!(r.get("missing"), None);
        // Snapshot order is registration order.
        let snap = r.snapshot();
        assert_eq!(snap[0].0, "completed");
        assert_eq!(snap[1].0, "queue_depth");
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn kind_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }
}
