//! Chrome trace-event JSON export of a recorded run.
//!
//! [`chrome_trace_json`] renders a [`MemorySink`] as the Trace Event
//! Format that Perfetto and `chrome://tracing` load:
//!
//! - **pid 0 "units"** — one thread (track) per instance, named by the
//!   run's track declarations. Busy/idle/collective/refill/drain slices
//!   become complete (`ph: "X"`) events; collectives and refills nest
//!   inside their iteration's busy slice.
//! - **pid 0, tid 0** — planner markers ([`InstantMarker`]) as global
//!   instant (`ph: "i"`) events.
//! - **pid 0 counter tracks** — [`CounterSample`] readings (queue depth,
//!   GSC occupancy, in-flight rows) as counter (`ph: "C"`) events, one
//!   named track per `(instance, counter)` pair, so Perfetto shows *why*
//!   a busy slice stalled next to the slice itself.
//! - **pid 1 "requests"** — each request's lifecycle as one async
//!   nestable span (`ph: "b"` at arrival, `ph: "e"` at its terminal
//!   shed/completion) with intermediate transitions as async instants
//!   (`ph: "n"`), all correlated by the request id.
//!
//! Timestamps are microseconds in the trace format; simulated
//! milliseconds are scaled by 1000 on the way out.

use crate::json::{push_f64, push_str};
use crate::sink::{CounterSample, MemorySink};
use crate::span::RequestEvent;

/// Scale from simulated ms to trace-format µs.
const TS_SCALE: f64 = 1000.0;

/// Renders `sink` as a Chrome trace-event JSON document (an object with a
/// `traceEvents` array and `displayTimeUnit: "ms"`).
pub fn chrome_trace_json(sink: &MemorySink) -> String {
    let mut out = String::with_capacity(256 + 160 * sink.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Process / thread naming metadata.
    for (pid, name) in [(0u32, "units"), (1, "requests")] {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        out.push_str(&pid.to_string());
        out.push_str(",\"tid\":0,\"args\":{\"name\":");
        push_str(&mut out, name);
        out.push_str("}}");
    }
    for (instance, name) in &sink.tracks {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        out.push_str(&instance.to_string());
        out.push_str(",\"args\":{\"name\":");
        push_str(&mut out, name);
        out.push_str("}}");
    }

    // Per-instance timeline slices.
    for s in &sink.slices {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        push_str(&mut out, s.label);
        out.push_str(",\"cat\":");
        push_str(&mut out, s.kind.category());
        out.push_str(",\"ph\":\"X\",\"ts\":");
        push_f64(&mut out, s.start_ms * TS_SCALE);
        out.push_str(",\"dur\":");
        push_f64(&mut out, s.dur_ms * TS_SCALE);
        out.push_str(",\"pid\":0,\"tid\":");
        out.push_str(&s.instance.to_string());
        out.push_str(",\"args\":{\"batch\":");
        out.push_str(&s.batch.to_string());
        out.push_str("}}");
    }

    // Counter tracks. Chrome keys counter tracks by (pid, name), so the
    // instance id is folded into the name to keep per-unit series apart;
    // cluster-wide counters keep the bare name.
    for c in &sink.counters {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        if c.instance == CounterSample::CLUSTER {
            push_str(&mut out, c.name);
        } else {
            push_str(&mut out, &format!("{} (inst {})", c.name, c.instance));
        }
        out.push_str(",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":");
        push_f64(&mut out, c.at_ms * TS_SCALE);
        out.push_str(",\"pid\":0,\"tid\":0,\"args\":{\"value\":");
        push_f64(&mut out, c.value);
        out.push_str("}}");
    }

    // Planner markers.
    for m in &sink.instants {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        push_str(&mut out, m.name);
        out.push_str(",\"ph\":\"i\",\"s\":\"g\",\"ts\":");
        push_f64(&mut out, m.at_ms * TS_SCALE);
        out.push_str(",\"pid\":0,\"tid\":0,\"args\":{\"detail\":");
        push_str(&mut out, &m.detail);
        out.push_str("}}");
    }

    // Request lifecycle spans (async nestable, correlated by request id).
    for r in &sink.spans {
        let (ph, name) = match r.event {
            RequestEvent::Arrival => ("b", r.model),
            e if e.is_terminal() => ("e", r.model),
            e => ("n", e.label()),
        };
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        push_str(&mut out, name);
        out.push_str(",\"cat\":\"request\",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"id\":");
        out.push_str(&r.request.to_string());
        out.push_str(",\"ts\":");
        push_f64(&mut out, r.at_ms * TS_SCALE);
        out.push_str(",\"pid\":1,\"tid\":0,\"args\":{\"event\":");
        push_str(&mut out, r.event.label());
        if let RequestEvent::Degraded { steps } = r.event {
            out.push_str(",\"steps\":");
            out.push_str(&steps.to_string());
        }
        if let RequestEvent::BatchJoin { instance }
        | RequestEvent::Iteration { instance, .. }
        | RequestEvent::Parked { instance }
        | RequestEvent::Resumed { instance }
        | RequestEvent::Completed { instance } = r.event
        {
            out.push_str(",\"instance\":");
            out.push_str(&instance.to_string());
        }
        if let RequestEvent::Iteration { step, .. } = r.event {
            out.push_str(",\"step\":");
            out.push_str(&step.to_string());
        }
        out.push_str("}}");
    }

    out.push_str("]}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;
    use crate::sink::{InstantMarker, Sink, SliceKind, TimelineSlice};
    use crate::span::SpanRecord;

    #[test]
    fn export_is_well_formed_json_with_all_channels() {
        let mut sink = MemorySink::new();
        sink.declare_track(0, "replica 0 (inst 0)".to_string());
        for (at, ev) in [
            (0.0, RequestEvent::Arrival),
            (0.0, RequestEvent::Admitted),
            (0.0, RequestEvent::Enqueued),
            (1.0, RequestEvent::BatchJoin { instance: 0 }),
            (
                2.0,
                RequestEvent::Iteration {
                    instance: 0,
                    step: 1,
                },
            ),
            (3.0, RequestEvent::Parked { instance: 0 }),
            (4.0, RequestEvent::Resumed { instance: 0 }),
            (5.0, RequestEvent::Migrated),
            (6.0, RequestEvent::Completed { instance: 0 }),
        ] {
            sink.span(SpanRecord {
                at_ms: at,
                request: 42,
                model: "sdxl \"turbo\"",
                event: ev,
            });
        }
        sink.span(SpanRecord {
            at_ms: 0.5,
            request: 43,
            model: "sd",
            event: RequestEvent::Degraded { steps: 12 },
        });
        sink.slice(TimelineSlice {
            instance: 0,
            kind: SliceKind::Busy,
            start_ms: 1.0,
            dur_ms: 5.0,
            label: "sdxl",
            batch: 4,
        });
        sink.instant(InstantMarker {
            at_ms: 2.5,
            name: "replan",
            detail: "replicated x2 -> tp2 gang x1".to_string(),
        });
        sink.counter(CounterSample {
            instance: CounterSample::CLUSTER,
            at_ms: 2.0,
            name: "queue depth",
            value: 5.0,
        });
        sink.counter(CounterSample {
            instance: 0,
            at_ms: 2.0,
            name: "gsc bytes",
            value: 1.5e9,
        });
        let json = chrome_trace_json(&sink);
        assert!(is_well_formed(&json), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"queue depth\""));
        assert!(json.contains("\"gsc bytes (inst 0)\""));
        assert!(json.contains("\"steps\":12"));
        // Simulated ms scale to µs timestamps.
        assert!(json.contains("\"ts\":6000"));
    }

    #[test]
    fn empty_sink_exports_an_empty_but_valid_trace() {
        let json = chrome_trace_json(&MemorySink::new());
        assert!(is_well_formed(&json), "{json}");
    }
}
