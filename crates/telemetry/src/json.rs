//! Minimal JSON emission (and validation) helpers — the workspace builds
//! offline with no `serde_json`, so trace export writes JSON by hand.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (non-finite values become `0`, which JSON
/// cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

/// Whether `s` is one well-formed JSON value (the whole input, surrounded
/// by optional whitespace). A deliberately small recursive-descent check —
/// enough for tests and smoke steps to validate emitted traces without a
/// JSON dependency.
pub fn is_well_formed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if !value(b, &mut i) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> bool {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, i),
        _ => false,
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], i: &mut usize) -> bool {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return true;
    }
    loop {
        skip_ws(b, i);
        if !string(b, i) {
            return false;
        }
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return false;
        }
        *i += 1;
        if !value(b, i) {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> bool {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return true;
    }
    loop {
        if !value(b, i) {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> bool {
    if b.get(*i) != Some(&b'"') {
        return false;
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return true;
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    false
}

fn number(b: &[u8], i: &mut usize) -> bool {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while matches!(b.get(*i), Some(b'0'..=b'9')) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while matches!(b.get(*i), Some(b'0'..=b'9')) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        while matches!(b.get(*i), Some(b'0'..=b'9')) {
            *i += 1;
        }
    }
    *i > start && matches!(b[start], b'-' | b'0'..=b'9') && b[*i - 1].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_stay_finite() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5,0");
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            " { \"a\" : [1, -2.5, 1e9, true, false, null, \"s\\\"x\"] } ",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1.25}]}",
            "3.25",
        ] {
            assert!(is_well_formed(ok), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "[1 2]",
            "tru",
            "1.",
            "{\"a\":1}extra",
            "\"unterminated",
        ] {
            assert!(!is_well_formed(bad), "{bad}");
        }
    }
}
