//! Streaming log-bucketed histogram (HDR-style, fixed bucket count).
//!
//! Samples land in geometrically spaced buckets, so percentile queries
//! cost O(buckets) and memory is O(buckets) regardless of sample count —
//! the property that lets report percentiles survive million-request
//! traces where a sort-everything path cannot.
//!
//! # Accuracy
//!
//! A percentile query returns the geometric midpoint of the bucket the
//! nearest-rank sample fell in, clamped to the observed `[min, max]`. The
//! true sample lies in the same bucket, so the estimate is off by at most
//! one bucket width: `estimate / exact` lies within `[1/growth, growth]`,
//! where `growth` is the bucket-edge ratio (about 4.1% for the default
//! 512 buckets spanning `[1e-3, 1e6]` ms). `count`, `mean`, `min`, and
//! `max` are exact.

/// Bucket count of [`LogHistogram::default`].
pub const DEFAULT_BUCKETS: usize = 512;
/// Lower edge (ms) of the default range.
pub const DEFAULT_LO: f64 = 1e-3;
/// Upper edge (ms) of the default range.
pub const DEFAULT_HI: f64 = 1e6;

/// A streaming log-bucketed histogram over non-negative samples.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ln_lo: f64,
    growth: f64,
    inv_ln_growth: f64,
    counts: Vec<u64>,
    /// Samples at or below `lo` (including exact zeros).
    under: u64,
    /// Samples at or above the top edge.
    over: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    /// The serving default: [`DEFAULT_BUCKETS`] buckets spanning
    /// [`DEFAULT_LO`]..[`DEFAULT_HI`] ms (growth ≈ 1.041, percentile
    /// error ≤ 4.1%).
    fn default() -> Self {
        Self::new(DEFAULT_BUCKETS, DEFAULT_LO, DEFAULT_HI)
    }
}

impl LogHistogram {
    /// A histogram of `buckets` geometric buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `buckets >= 1` and `0 < lo < hi` (both finite).
    pub fn new(buckets: usize, lo: f64, hi: f64) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi,
            "need 0 < lo < hi, got [{lo}, {hi}]"
        );
        let growth = (hi / lo).powf(1.0 / buckets as f64);
        Self {
            lo,
            ln_lo: lo.ln(),
            growth,
            inv_ln_growth: 1.0 / growth.ln(),
            counts: vec![0; buckets],
            under: 0,
            over: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket-edge ratio — one bucket width, the relative error bound
    /// of percentile queries.
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// Records one sample. Negative values clamp to zero; non-finite
    /// values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            debug_assert!(false, "non-finite histogram sample {value}");
            return;
        }
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= self.lo {
            self.under += 1;
        } else {
            let idx = ((v.ln() - self.ln_lo) * self.inv_ln_growth) as usize;
            match self.counts.get_mut(idx) {
                Some(c) => *c += 1,
                None => self.over += 1,
            }
        }
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Folds `other` into `self` bucket-by-bucket, so per-shard (e.g.
    /// per-model) histograms roll up into a total without re-streaming
    /// the samples. The merged histogram answers every query exactly as
    /// if both sample streams had been recorded into one histogram:
    /// counts, sum, min, and max add/meet exactly, and the bucket layout
    /// is shared so percentile estimates are identical too.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket layouts
    /// (bucket count or range).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging histograms with different bucket counts"
        );
        assert!(
            self.lo.to_bits() == other.lo.to_bits()
                && self.growth.to_bits() == other.growth.to_bits(),
            "merging histograms with different ranges: [{}, growth {}] vs [{}, growth {}]",
            self.lo,
            self.growth,
            other.lo,
            other.growth
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.under += other.under;
        self.over += other.over;
        self.count += other.count;
        self.sum += other.sum;
        // The empty sentinels (+inf min, -inf max) are identities of
        // min/max, so merging an empty histogram is a no-op.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile estimate for `q ∈ [0, 1]` (0.0 when
    /// empty). The under-range bucket answers with the exact minimum and
    /// the over-range bucket with the exact maximum; interior buckets
    /// answer with their geometric midpoint clamped to `[min, max]`, so
    /// the estimate is within one bucket width of the exact nearest-rank
    /// value (see the module docs).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.under;
        if rank <= seen {
            return self.min();
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let mid = self.lo * self.growth.powf(i as f64 + 0.5);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn constant_sample_within_one_bucket() {
        let mut h = LogHistogram::default();
        for _ in 0..32 {
            h.record(7.0);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(h.max(), 7.0);
        let g = h.growth();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p / 7.0 <= g && 7.0 / p <= g, "p{q} = {p}");
        }
    }

    #[test]
    fn zeros_and_out_of_range_samples_stay_exact_at_the_edges() {
        let mut h = LogHistogram::new(16, 1.0, 1000.0);
        for _ in 0..10 {
            h.record(0.0);
        }
        h.record(1e9); // above the range: counted, answered by exact max
        h.record(-3.0); // clamps to zero
        assert_eq!(h.count(), 12);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(1.0), 1e9);
        assert_eq!(h.max(), 1e9);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = LogHistogram::default();
        let mut x = 1u64;
        for _ in 0..1000 {
            // Deterministic spread over several decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(((x >> 33) % 100_000) as f64 / 10.0);
        }
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= prev, "p{i} = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn merge_is_identical_to_restreaming() {
        // Split one deterministic stream across three shard histograms,
        // merge them, and compare every statistic against a histogram
        // that recorded the whole stream directly.
        let mut shards = [
            LogHistogram::default(),
            LogHistogram::default(),
            LogHistogram::default(),
        ];
        let mut reference = LogHistogram::default();
        let mut x = 7u64;
        for i in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across decades, including under-range zeros and an
            // over-range spike so the edge buckets merge too.
            let v = match i % 7 {
                0 => 0.0,
                1 => 1e9,
                _ => ((x >> 30) % 1_000_000) as f64 / 53.0,
            };
            shards[i % 3].record(v);
            reference.record(v);
        }
        let mut merged = LogHistogram::default();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.min().to_bits(), reference.min().to_bits());
        assert_eq!(merged.max().to_bits(), reference.max().to_bits());
        // Bucket occupancy is integral, so every percentile answer is
        // bit-identical to the re-streamed histogram's.
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(
                merged.percentile(q).to_bits(),
                reference.percentile(q).to_bits(),
                "p{q}"
            );
        }
        // The running sums accumulate in different orders, so the means
        // agree to rounding, not necessarily to the last bit.
        let (m, r) = (merged.mean(), reference.mean());
        assert!((m - r).abs() <= 1e-9 * r.abs().max(1.0), "{m} vs {r}");
    }

    #[test]
    fn merging_an_empty_histogram_is_a_no_op() {
        let mut h = LogHistogram::default();
        h.record(5.0);
        let before = h.clone();
        h.merge(&LogHistogram::default());
        assert_eq!(h, before);
        // And merging *into* an empty one adopts the other side exactly.
        let mut empty = LogHistogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "different bucket counts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = LogHistogram::new(8, 1.0, 100.0);
        let b = LogHistogram::new(16, 1.0, 100.0);
        a.merge(&b);
    }

    #[test]
    fn estimate_within_one_bucket_of_exact_sorted_percentile() {
        let mut h = LogHistogram::default();
        let mut samples: Vec<f64> = Vec::new();
        let mut x = 99u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 0.05 + ((x >> 30) % 1_000_000) as f64 / 37.0;
            samples.push(v);
            h.record(v);
        }
        samples.sort_by(f64::total_cmp);
        let g = h.growth();
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let est = h.percentile(q);
            assert!(
                est / exact <= g && exact / est <= g,
                "p{q}: est {est} vs exact {exact} (growth {g})"
            );
        }
    }
}
