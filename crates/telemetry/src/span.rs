//! Typed request-lifecycle events.
//!
//! Every request moves through the chain *arrival → admission decision
//! (admit / shed / degrade) → enqueue → batch-join → per-iteration
//! boundary → park/resume → migration → completion*; each transition is
//! one [`SpanRecord`] stamped with the simulated time it fired at. Sheds,
//! completions, and fault losses are the only terminal events, so a
//! well-formed chain has exactly one [`RequestEvent::Arrival`] and
//! exactly one terminal — the conservation property the telemetry tests
//! assert.

/// One transition in a request's lifecycle. Instance ids identify the
/// scheduling-unit member the transition happened on (the unit leader for
/// batch-level events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestEvent {
    /// The request was released to the admission controller.
    Arrival,
    /// Admission accepted the request untouched.
    Admitted,
    /// Admission degraded the request to a reduced DDIM step budget.
    Degraded {
        /// The granted step budget.
        steps: u32,
    },
    /// Admission refused the request (terminal: it never queues).
    Shed,
    /// The request entered the shared queue.
    Enqueued,
    /// The request joined a unit's running batch.
    BatchJoin {
        /// Leader instance id of the admitting unit.
        instance: u32,
    },
    /// The request finished one denoising iteration and remains running.
    Iteration {
        /// Leader instance id of the executing unit.
        instance: u32,
        /// Denoising steps completed so far.
        step: u32,
    },
    /// The request was preempted: its batch slot was given up and its
    /// latent parked (GSC or DRAM).
    Parked {
        /// Leader instance id of the parking unit.
        instance: u32,
    },
    /// A previously parked request re-joined a batch.
    Resumed {
        /// Leader instance id of the resuming unit.
        instance: u32,
    },
    /// A placement migration drained the request back into the queue.
    Migrated,
    /// An injected fault destroyed the request: its latent lived on dead
    /// hardware and no DRAM checkpoint covered it (terminal).
    Lost,
    /// The request finished its final iteration (terminal).
    Completed {
        /// Leader instance id of the completing unit.
        instance: u32,
    },
}

impl RequestEvent {
    /// Whether this event ends the request's chain.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RequestEvent::Shed | RequestEvent::Completed { .. } | RequestEvent::Lost
        )
    }

    /// Short stable label (Chrome-trace event names, debugging).
    pub fn label(&self) -> &'static str {
        match self {
            RequestEvent::Arrival => "arrival",
            RequestEvent::Admitted => "admitted",
            RequestEvent::Degraded { .. } => "degraded",
            RequestEvent::Shed => "shed",
            RequestEvent::Enqueued => "enqueued",
            RequestEvent::BatchJoin { .. } => "batch-join",
            RequestEvent::Iteration { .. } => "iteration",
            RequestEvent::Parked { .. } => "parked",
            RequestEvent::Resumed { .. } => "resumed",
            RequestEvent::Migrated => "migrated",
            RequestEvent::Lost => "lost",
            RequestEvent::Completed { .. } => "completed",
        }
    }
}

/// One emitted lifecycle event: which request, when (simulated ms), and
/// what happened. `model` is the request's model label (model names are
/// static in the simulator, so records stay `Copy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Simulated time the transition fired (ms).
    pub at_ms: f64,
    /// Request id.
    pub request: u64,
    /// Model label of the request.
    pub model: &'static str,
    /// The transition.
    pub event: RequestEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_labels() {
        assert!(RequestEvent::Shed.is_terminal());
        assert!(RequestEvent::Completed { instance: 3 }.is_terminal());
        assert!(RequestEvent::Lost.is_terminal());
        assert_eq!(RequestEvent::Lost.label(), "lost");
        for e in [
            RequestEvent::Arrival,
            RequestEvent::Admitted,
            RequestEvent::Degraded { steps: 10 },
            RequestEvent::Enqueued,
            RequestEvent::BatchJoin { instance: 0 },
            RequestEvent::Iteration {
                instance: 0,
                step: 1,
            },
            RequestEvent::Parked { instance: 0 },
            RequestEvent::Resumed { instance: 0 },
            RequestEvent::Migrated,
        ] {
            assert!(!e.is_terminal(), "{e:?}");
            assert!(!e.label().is_empty());
        }
    }
}
