//! The `Sink` trait the serving stack emits telemetry through, and its two
//! built-in implementations: the near-zero-cost [`NullSink`] default and
//! the in-memory recorder [`MemorySink`].

use crate::span::SpanRecord;

/// What a [`TimelineSlice`] represents on an instance's track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// Executing denoising iterations.
    Busy,
    /// Clock jumped forward with no work (queue empty or nothing ready).
    Idle,
    /// Gang-interconnect collective time inside an iteration.
    Collective,
    /// Weight bytes streamed from DRAM during an iteration (estimated
    /// duration: bytes at the DRAM refill rate, clamped to the iteration).
    Refill,
    /// A placement migration draining the unit's running batch.
    Drain,
}

impl SliceKind {
    /// Stable category label (Chrome-trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            SliceKind::Busy => "busy",
            SliceKind::Idle => "idle",
            SliceKind::Collective => "collective",
            SliceKind::Refill => "refill",
            SliceKind::Drain => "drain",
        }
    }
}

/// One duration slice on a per-instance timeline track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSlice {
    /// Instance id the slice belongs to (gang members get their own
    /// tracks).
    pub instance: u32,
    /// What the instance was doing.
    pub kind: SliceKind,
    /// Slice start (simulated ms).
    pub start_ms: f64,
    /// Slice duration (simulated ms).
    pub dur_ms: f64,
    /// Display label (the model name for busy slices, the kind's category
    /// otherwise).
    pub label: &'static str,
    /// Batch rows occupying the unit during the slice (0 when not
    /// applicable).
    pub batch: u32,
}

/// One reading of a named counter track (queue depth, GSC occupancy,
/// in-flight rows) — the "why did that busy slice stall" context next to
/// the timeline slices. Cluster-wide counters use
/// [`CounterSample::CLUSTER`] as their instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Instance the counter belongs to, or [`CounterSample::CLUSTER`]
    /// for fleet-wide series (the shared queue depth).
    pub instance: u32,
    /// When the reading was taken (simulated ms).
    pub at_ms: f64,
    /// Counter name (`queue depth`, `gsc bytes`, `inflight rows`).
    pub name: &'static str,
    /// The reading.
    pub value: f64,
}

impl CounterSample {
    /// The pseudo-instance of cluster-wide counter tracks.
    pub const CLUSTER: u32 = u32::MAX;
}

/// A point-in-time marker (planner re-plans, epoch boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantMarker {
    /// When the marker fired (simulated ms).
    pub at_ms: f64,
    /// Marker name (e.g. `replan`).
    pub name: &'static str,
    /// Free-form detail (e.g. the placement switch).
    pub detail: String,
}

/// Where the serving stack emits telemetry. Implementations are pure
/// observers: they receive copies of simulation facts and must not feed
/// anything back.
///
/// [`Sink::enabled`] is the hot-loop gate — emission sites check it once
/// per scope and skip building records entirely when it is `false`, so the
/// default [`NullSink`] costs one branch.
pub trait Sink: std::fmt::Debug {
    /// Whether emission sites should bother producing records.
    fn enabled(&self) -> bool {
        true
    }

    /// A request-lifecycle transition.
    fn span(&mut self, record: SpanRecord);

    /// A per-instance timeline slice.
    fn slice(&mut self, slice: TimelineSlice);

    /// A point-in-time marker.
    fn instant(&mut self, marker: InstantMarker);

    /// A counter-track reading. Defaults to a no-op so existing sinks
    /// (and sinks that only care about spans) need not opt in.
    fn counter(&mut self, _sample: CounterSample) {}

    /// Declares (or renames) the display label of instance `instance`'s
    /// timeline track.
    fn declare_track(&mut self, instance: u32, name: String);
}

/// The default sink: discards everything and reports itself disabled so
/// emission sites skip record construction entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn span(&mut self, _record: SpanRecord) {}

    fn slice(&mut self, _slice: TimelineSlice) {}

    fn instant(&mut self, _marker: InstantMarker) {}

    fn declare_track(&mut self, _instance: u32, _name: String) {}
}

/// Records everything in memory, in emission order — the input to
/// [`crate::chrome_trace_json`] and the telemetry tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    /// Request-lifecycle events, in emission order.
    pub spans: Vec<SpanRecord>,
    /// Per-instance timeline slices, in emission order.
    pub slices: Vec<TimelineSlice>,
    /// Point-in-time markers, in emission order.
    pub instants: Vec<InstantMarker>,
    /// Counter-track readings, in emission order.
    pub counters: Vec<CounterSample>,
    /// Declared `(instance, label)` track names (last declaration wins).
    pub tracks: Vec<(u32, String)>,
}

impl MemorySink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total recorded events across all channels.
    pub fn len(&self) -> usize {
        self.spans.len() + self.slices.len() + self.instants.len() + self.counters.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lifecycle events of request `id`, in emission order.
    pub fn spans_of(&self, id: u64) -> Vec<SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.request == id)
            .copied()
            .collect()
    }
}

impl Sink for MemorySink {
    fn span(&mut self, record: SpanRecord) {
        self.spans.push(record);
    }

    fn slice(&mut self, slice: TimelineSlice) {
        self.slices.push(slice);
    }

    fn instant(&mut self, marker: InstantMarker) {
        self.instants.push(marker);
    }

    fn counter(&mut self, sample: CounterSample) {
        self.counters.push(sample);
    }

    fn declare_track(&mut self, instance: u32, name: String) {
        self.tracks.push((instance, name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::RequestEvent;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.span(SpanRecord {
            at_ms: 0.0,
            request: 0,
            model: "m",
            event: RequestEvent::Arrival,
        });
        sink.declare_track(0, "x".to_string());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        assert!(sink.is_empty());
        for (i, ev) in [
            RequestEvent::Arrival,
            RequestEvent::Enqueued,
            RequestEvent::Completed { instance: 0 },
        ]
        .into_iter()
        .enumerate()
        {
            sink.span(SpanRecord {
                at_ms: i as f64,
                request: 7,
                model: "m",
                event: ev,
            });
        }
        sink.slice(TimelineSlice {
            instance: 0,
            kind: SliceKind::Busy,
            start_ms: 0.0,
            dur_ms: 2.0,
            label: "m",
            batch: 1,
        });
        sink.instant(InstantMarker {
            at_ms: 1.0,
            name: "replan",
            detail: "a -> b".to_string(),
        });
        sink.counter(CounterSample {
            instance: CounterSample::CLUSTER,
            at_ms: 1.5,
            name: "queue depth",
            value: 3.0,
        });
        assert_eq!(sink.len(), 6);
        assert_eq!(sink.counters.len(), 1);
        let chain = sink.spans_of(7);
        assert_eq!(chain.len(), 3);
        assert!(chain.last().unwrap().event.is_terminal());
    }
}
