//! Observability primitives for the EXION serving simulator — spans,
//! timelines, histograms, metric registries, and self-metering timers.
//!
//! The crate is deliberately dependency-free (std only): its hooks sit in
//! the cluster hot loop, and the workspace builds offline. Everything here
//! is a *pure observer* — nothing in this crate feeds back into simulated
//! time, so a run with sinks attached is byte-identical to one without.
//!
//! - [`Sink`] / [`NullSink`] / [`MemorySink`]: where the serving stack
//!   emits typed request-lifecycle [`SpanRecord`]s, per-unit
//!   [`TimelineSlice`]s, and [`InstantMarker`]s. The default [`NullSink`]
//!   reports itself disabled so emission sites can skip even building the
//!   records.
//! - [`chrome_trace_json`]: renders a [`MemorySink`] as Chrome trace-event
//!   JSON loadable in Perfetto / `chrome://tracing` — per-instance tracks
//!   of busy/idle/collective/refill/drain slices, planner re-plans as
//!   instant markers, and per-request async spans.
//! - [`LogHistogram`]: a streaming, log-bucketed (HDR-style) histogram
//!   with a fixed bucket count — O(1) memory percentiles with a bounded
//!   relative error, replacing sort-everything percentile paths.
//! - [`Registry`]: an insertion-ordered counter/gauge registry whose
//!   snapshots feed report time-series.
//! - [`StopWatch`]: a wall-clock accumulator for self-metering (simulated
//!   ms per wall ms).

pub mod chrome;
pub mod hist;
pub mod json;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;

pub use chrome::chrome_trace_json;
pub use hist::LogHistogram;
pub use profile::StopWatch;
pub use registry::Registry;
pub use sink::{
    CounterSample, InstantMarker, MemorySink, NullSink, Sink, SliceKind, TimelineSlice,
};
pub use span::{RequestEvent, SpanRecord};
