//! Kernel-granularity roofline latency and energy estimation.

use serde::{Deserialize, Serialize};

use crate::device::GpuSpec;

/// One GPU kernel's work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Floating-point operations (2 per MAC).
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl Kernel {
    /// A matrix-multiply kernel `m × k × n` at `bytes_per_el` precision,
    /// touching both operands and the output once.
    pub fn matmul(m: u64, k: u64, n: u64, bytes_per_el: f64) -> Self {
        Self {
            flops: 2.0 * m as f64 * k as f64 * n as f64,
            bytes: bytes_per_el * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64),
        }
    }

    /// A pointwise/normalization kernel over `elements` values (bandwidth
    /// bound: read + write).
    pub fn pointwise(elements: u64, bytes_per_el: f64) -> Self {
        Self {
            flops: 5.0 * elements as f64,
            bytes: 2.0 * bytes_per_el * elements as f64,
        }
    }

    /// Roofline execution time on `gpu` (seconds), including launch overhead.
    pub fn time_s(&self, gpu: &GpuSpec) -> f64 {
        let compute_s = self.flops / (gpu.effective_tflops() * 1e12);
        let memory_s = self.bytes / (gpu.effective_bandwidth_gbps() * 1e9);
        gpu.kernel_launch_us * 1e-6 + compute_s.max(memory_s)
    }

    /// Whether the kernel is compute-bound on `gpu`.
    pub fn compute_bound(&self, gpu: &GpuSpec) -> bool {
        self.flops / (gpu.effective_tflops() * 1e12)
            > self.bytes / (gpu.effective_bandwidth_gbps() * 1e9)
    }
}

/// Aggregate cost of a GPU run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuRunCost {
    /// Total latency (ms).
    pub latency_ms: f64,
    /// Total energy (mJ).
    pub energy_mj: f64,
    /// Total useful operations.
    pub flops: f64,
    /// Number of kernels launched.
    pub kernels: u64,
    /// Mean achieved utilization of peak compute.
    pub utilization: f64,
}

impl GpuRunCost {
    /// Effective throughput (TFLOPS).
    pub fn effective_tflops(&self) -> f64 {
        if self.latency_ms == 0.0 {
            0.0
        } else {
            self.flops / (self.latency_ms * 1e-3) / 1e12
        }
    }

    /// Energy efficiency (TOPS/W = TFLOPS per watt of average power).
    pub fn tops_per_watt(&self) -> f64 {
        if self.energy_mj == 0.0 {
            0.0
        } else {
            self.flops / (self.energy_mj * 1e-3) / 1e12
        }
    }
}

/// Runs a kernel sequence through the roofline and power model.
///
/// Power scales between idle and TDP with achieved compute utilization —
/// launch-bound workloads (tiny diffusion models at batch 1) burn near-idle
/// power for a long time, which is exactly the regime where the paper's
/// GPU energy-efficiency gap explodes.
pub fn estimate_run(gpu: &GpuSpec, kernels: &[Kernel]) -> GpuRunCost {
    let mut latency_s = 0.0f64;
    let mut flops = 0.0f64;
    for k in kernels {
        latency_s += k.time_s(gpu);
        flops += k.flops;
    }
    let utilization = if latency_s > 0.0 {
        (flops / (gpu.peak_tflops * 1e12) / latency_s).min(1.0)
    } else {
        0.0
    };
    let power_w = gpu.idle_w + (gpu.tdp_w - gpu.idle_w) * utilization;
    GpuRunCost {
        latency_ms: latency_s * 1e3,
        energy_mj: power_w * latency_s * 1e3,
        flops,
        kernels: kernels.len() as u64,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_matmul_is_compute_bound() {
        let gpu = GpuSpec::rtx6000_ada();
        let k = Kernel::matmul(4096, 4096, 4096, 2.0);
        assert!(k.compute_bound(&gpu));
        // 137 GFLOP at 63.8 effective TFLOPS ≈ 2.2 ms.
        let t = k.time_s(&gpu);
        assert!((1e-3..5e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn pointwise_is_bandwidth_bound() {
        let gpu = GpuSpec::rtx6000_ada();
        assert!(!Kernel::pointwise(1 << 20, 2.0).compute_bound(&gpu));
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let gpu = GpuSpec::rtx6000_ada();
        let k = Kernel::matmul(8, 256, 256, 2.0);
        let t = k.time_s(&gpu);
        assert!(t < 2.0 * gpu.kernel_launch_us * 1e-6, "t = {t}");
    }

    #[test]
    fn launch_bound_runs_burn_near_idle_power() {
        let gpu = GpuSpec::rtx6000_ada();
        let kernels = vec![Kernel::matmul(8, 64, 64, 2.0); 1000];
        let cost = estimate_run(&gpu, &kernels);
        assert!(cost.utilization < 0.01);
        let mean_power = cost.energy_mj / cost.latency_ms;
        assert!(mean_power < gpu.idle_w * 1.5, "power {mean_power} W");
    }

    #[test]
    fn saturated_runs_approach_tdp() {
        let gpu = GpuSpec::rtx6000_ada();
        let kernels = vec![Kernel::matmul(8192, 8192, 8192, 2.0); 4];
        let cost = estimate_run(&gpu, &kernels);
        assert!(cost.utilization > 0.3);
        let mean_power = cost.energy_mj / cost.latency_ms;
        assert!(mean_power > 100.0);
    }

    #[test]
    fn edge_gpu_is_slower_than_server() {
        let kernels = vec![Kernel::matmul(1024, 1024, 1024, 2.0); 8];
        let server = estimate_run(&GpuSpec::rtx6000_ada(), &kernels);
        let edge = estimate_run(&GpuSpec::jetson_orin_nano(), &kernels);
        assert!(edge.latency_ms > 5.0 * server.latency_ms);
    }

    #[test]
    fn cost_accessors() {
        let cost = GpuRunCost {
            latency_ms: 10.0,
            energy_mj: 1000.0,
            flops: 1e12,
            kernels: 3,
            utilization: 0.5,
        };
        assert!((cost.effective_tflops() - 100.0).abs() < 1e-9);
        assert!((cost.tops_per_watt() - 1.0).abs() < 1e-9);
    }
}
