//! Kernel enumeration of the diffusion benchmarks on a GPU.
//!
//! GPUs run the same transformer blocks as EXION but as a sequence of fused
//! kernels at FP16, with no way to exploit the unstructured output sparsity
//! ("conventional HW, such as GPUs, cannot reduce energy consumption and
//! latency by utilizing it") — so the GPU cost model is always dense.

use exion_model::config::{ModelConfig, NetworkType};

use crate::device::GpuSpec;
use crate::roofline::{estimate_run, GpuRunCost, Kernel};

/// FP16 operand size.
const FP16_BYTES: f64 = 2.0;

/// Enumerates the kernels of one denoising iteration at batch `batch`.
pub fn iteration_kernels(config: &ModelConfig, batch: u64) -> Vec<Kernel> {
    let p = &config.paper;
    let mut kernels = Vec::new();
    let per_sample_m = match config.network {
        NetworkType::TransformerOnly => p.tokens as u64,
        _ => (p.tokens as u64 / 2).max(1),
    };
    let m = per_sample_m * batch;
    let full_tokens = p.tokens as u64 * batch;
    let d = p.d_model as u64;
    let d_ff = p.d_ff as u64;
    let hidden = if config.geglu { d_ff / 2 } else { d_ff };
    let heads = p.heads as u64;
    let d_head = (d / heads).max(1);

    if config.network == NetworkType::UNetRes {
        // Two ResBlock stages, each a fused double conv (3-tap ⇒ 3 d×d MACs
        // per conv per token).
        for _ in 0..2 {
            kernels.push(Kernel::matmul(full_tokens, 3 * d, d, FP16_BYTES));
            kernels.push(Kernel::matmul(full_tokens, 3 * d, d, FP16_BYTES));
        }
    }

    for _ in 0..p.blocks {
        // Fused QKV projection, then per-batch flash-style attention
        // (scores + probability·V as two kernels), output projection.
        kernels.push(Kernel::matmul(m, d, 3 * d, FP16_BYTES));
        for _ in 0..batch {
            kernels.push(Kernel::matmul(
                per_sample_m * heads,
                d_head,
                per_sample_m,
                FP16_BYTES,
            ));
            kernels.push(Kernel::matmul(
                per_sample_m * heads,
                per_sample_m,
                d_head,
                FP16_BYTES,
            ));
        }
        kernels.push(Kernel::matmul(m, d, d, FP16_BYTES));
        // Two LayerNorms, softmax, two residuals.
        kernels.push(Kernel::pointwise(m * d, FP16_BYTES));
        kernels.push(Kernel::pointwise(m * d, FP16_BYTES));
        kernels.push(Kernel::pointwise(
            batch * per_sample_m * per_sample_m,
            FP16_BYTES,
        ));
        kernels.push(Kernel::pointwise(m * d, FP16_BYTES));
        // FFN pair + activation.
        kernels.push(Kernel::matmul(m, d, d_ff, FP16_BYTES));
        kernels.push(Kernel::pointwise(m * d_ff, FP16_BYTES));
        kernels.push(Kernel::matmul(m, hidden, d, FP16_BYTES));
    }
    kernels
}

/// Estimates a full generation (all denoising iterations) on `gpu`.
pub fn estimate_generation(gpu: &GpuSpec, config: &ModelConfig, batch: u64) -> GpuRunCost {
    let per_iter = iteration_kernels(config, batch);
    let mut one = estimate_run(gpu, &per_iter);
    // Framework overhead per denoising step (runs at near-idle GPU power).
    let overhead_s = gpu.pipeline_overhead_us * 1e-6;
    one.latency_ms += overhead_s * 1e3;
    one.energy_mj += gpu.idle_w * overhead_s * 1e3;
    one.utilization *= one.latency_ms / (one.latency_ms + overhead_s * 1e3).max(1e-12);
    one.latency_ms *= config.iterations as f64;
    one.energy_mj *= config.iterations as f64;
    one.flops *= config.iterations as f64;
    one.kernels *= config.iterations as u64;
    one
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    #[test]
    fn small_models_are_launch_bound_on_server_gpu() {
        let gpu = GpuSpec::rtx6000_ada();
        let mld = ModelConfig::for_kind(ModelKind::Mld);
        let cost = estimate_generation(&gpu, &mld, 1);
        // MLD at batch 1 cannot feed a 300 W GPU.
        assert!(cost.utilization < 0.05, "utilization {}", cost.utilization);
    }

    #[test]
    fn large_models_reach_reasonable_utilization() {
        let gpu = GpuSpec::rtx6000_ada();
        let sd = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let cost = estimate_generation(&gpu, &sd, 8);
        assert!(cost.utilization > 0.05, "utilization {}", cost.utilization);
    }

    #[test]
    fn stable_diffusion_latency_order_of_magnitude() {
        // The paper's intro measures ~11.8 s for Stable Diffusion on the
        // RTX 6000 Ada (50 iterations, FP32 pipeline with overheads). Our
        // FP16 roofline should land within the same order: 0.5–15 s.
        let gpu = GpuSpec::rtx6000_ada();
        let sd = ModelConfig::for_kind(ModelKind::StableDiffusion);
        let cost = estimate_generation(&gpu, &sd, 1);
        assert!(
            (100.0..15_000.0).contains(&cost.latency_ms),
            "latency {} ms",
            cost.latency_ms
        );
    }

    #[test]
    fn batch_8_amortizes_launch_overhead() {
        let gpu = GpuSpec::rtx6000_ada();
        let mld = ModelConfig::for_kind(ModelKind::Mld);
        let b1 = estimate_generation(&gpu, &mld, 1);
        let b8 = estimate_generation(&gpu, &mld, 8);
        // 8× the work in far less than 8× the time.
        assert!(b8.latency_ms < 3.0 * b1.latency_ms);
    }

    #[test]
    fn kernel_count_scales_with_blocks() {
        let mld = ModelConfig::for_kind(ModelKind::Mld);
        let dit = ModelConfig::for_kind(ModelKind::Dit);
        assert!(iteration_kernels(&dit, 1).len() > iteration_kernels(&mld, 1).len());
    }
}
