//! GPU device specifications (paper Table II plus the A100 of Fig. 19(b)).

use serde::{Deserialize, Serialize};

/// Analytical GPU device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// Peak throughput in the precision diffusion inference uses (TFLOPS,
    /// FP16/tensor path where available).
    pub peak_tflops: f64,
    /// Peak memory bandwidth (GB/s).
    pub bandwidth_gbps: f64,
    /// Board power limit (W).
    pub tdp_w: f64,
    /// Idle/baseline power while a process holds the device (W).
    pub idle_w: f64,
    /// Per-kernel launch + scheduling overhead (µs).
    pub kernel_launch_us: f64,
    /// Achievable fraction of peak compute on transformer inference kernels.
    pub compute_efficiency: f64,
    /// Achievable fraction of peak bandwidth.
    pub bandwidth_efficiency: f64,
    /// Per-denoising-iteration framework overhead (µs): Python dispatch,
    /// scheduler math, synchronization. The paper measures full PyTorch
    /// pipelines (its intro reports 11.8 s for Stable Diffusion on the
    /// RTX 6000 Ada — far above any kernel roofline), so the baseline model
    /// must carry this term; it dominates for the small benchmarks.
    pub pipeline_overhead_us: f64,
}

impl GpuSpec {
    /// NVIDIA RTX 6000 Ada (Table II server GPU: 91.1 TFLOPS FP32, 960 GB/s,
    /// ~300 W). Diffusion inference uses the FP16 tensor path at roughly
    /// double the FP32 rate.
    pub fn rtx6000_ada() -> Self {
        Self {
            pipeline_overhead_us: 5000.0,
            name: "RTX 6000 Ada",
            peak_tflops: 182.2,
            bandwidth_gbps: 960.0,
            tdp_w: 300.0,
            idle_w: 30.0,
            kernel_launch_us: 5.0,
            compute_efficiency: 0.35,
            bandwidth_efficiency: 0.75,
        }
    }

    /// NVIDIA Jetson Orin Nano (Table II edge GPU: 40 TOPS INT8, 68 GB/s,
    /// ~15 W); FP16 runs at roughly half the INT8 rate.
    pub fn jetson_orin_nano() -> Self {
        Self {
            pipeline_overhead_us: 25000.0,
            name: "Jetson Orin Nano",
            peak_tflops: 20.0,
            bandwidth_gbps: 68.0,
            tdp_w: 15.0,
            idle_w: 4.0,
            kernel_launch_us: 12.0,
            compute_efficiency: 0.30,
            bandwidth_efficiency: 0.65,
        }
    }

    /// NVIDIA A100 80 GB (Fig. 19(b) baseline: 312 TFLOPS FP16 tensor,
    /// 1935 GB/s, 400 W).
    pub fn a100() -> Self {
        Self {
            pipeline_overhead_us: 5000.0,
            name: "A100",
            peak_tflops: 312.0,
            bandwidth_gbps: 1935.0,
            tdp_w: 400.0,
            idle_w: 40.0,
            kernel_launch_us: 5.0,
            compute_efficiency: 0.35,
            bandwidth_efficiency: 0.80,
        }
    }

    /// Effective compute rate (TFLOPS) after the inference derate.
    pub fn effective_tflops(&self) -> f64 {
        self.peak_tflops * self.compute_efficiency
    }

    /// Effective bandwidth (GB/s) after the derate.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps * self.bandwidth_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_specs() {
        let server = GpuSpec::rtx6000_ada();
        assert!((server.bandwidth_gbps - 960.0).abs() < 1e-9);
        assert!((server.tdp_w - 300.0).abs() < 1e-9);
        let edge = GpuSpec::jetson_orin_nano();
        assert!((edge.bandwidth_gbps - 68.0).abs() < 1e-9);
        assert!((edge.tdp_w - 15.0).abs() < 1e-9);
    }

    #[test]
    fn server_outclasses_edge() {
        let server = GpuSpec::rtx6000_ada();
        let edge = GpuSpec::jetson_orin_nano();
        assert!(server.effective_tflops() > 5.0 * edge.effective_tflops());
        assert!(server.effective_bandwidth_gbps() > 10.0 * edge.effective_bandwidth_gbps());
    }

    #[test]
    fn derates_are_fractions() {
        for g in [
            GpuSpec::rtx6000_ada(),
            GpuSpec::jetson_orin_nano(),
            GpuSpec::a100(),
        ] {
            assert!(g.compute_efficiency > 0.0 && g.compute_efficiency <= 1.0);
            assert!(g.bandwidth_efficiency > 0.0 && g.bandwidth_efficiency <= 1.0);
            assert!(g.idle_w < g.tdp_w);
        }
    }
}
