//! # exion-gpu
//!
//! Analytical GPU baselines for the EXION reproduction.
//!
//! The paper measures real hardware (NVIDIA RTX 6000 Ada with nvidia-smi,
//! Jetson Orin Nano with tegrastats, an A100 for the Cambricon-D comparison).
//! Physical GPUs are not available here, so this crate substitutes documented
//! roofline models parameterized with the paper's own Table II specifications
//! plus standard inference derates (see DESIGN.md §1): per-kernel launch
//! overhead, achievable-compute and achievable-bandwidth efficiencies, and a
//! utilization-scaled power model between idle and TDP.
//!
//! * [`device`] — Table II device specs (RTX 6000 Ada, Jetson Orin Nano,
//!   A100),
//! * [`roofline`] — kernel-granularity latency/energy estimation,
//! * [`diffusion_cost`] — kernel enumeration of the benchmark workloads,
//! * [`cambricon`] — the Cambricon-D differential-acceleration baseline of
//!   Fig. 19(b).

pub mod cambricon;
pub mod device;
pub mod diffusion_cost;
pub mod roofline;

pub use device::GpuSpec;
pub use diffusion_cost::estimate_generation;
pub use roofline::{GpuRunCost, Kernel};
