//! Cambricon-D baseline (Fig. 19(b)).
//!
//! Cambricon-D (ISCA'24) applies *differential acceleration* to diffusion
//! models: consecutive iterations' inputs differ little, so it computes on
//! deltas, which works extremely well for convolutional layers (narrow value
//! ranges, cheap delta arithmetic) and much less well for transformer blocks
//! (softmax and layernorm break delta linearity). The paper's comparison
//! point: on Stable Diffusion (conv-heavy) Cambricon-D slightly beats
//! EXION42 (7.9× vs 7.0× over an A100); on DiT (transformer-only) EXION42
//! wins (5.2× vs 3.3×).
//!
//! The model here is a weighted harmonic mean of per-portion speedups over
//! the A100 baseline — enough to reproduce the *structural* result that
//! differential acceleration needs convolutions to shine.

use exion_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Analytical Cambricon-D accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CambriconD {
    /// Speedup of convolutional portions over the A100 baseline.
    pub conv_speedup: f64,
    /// Speedup of transformer portions over the A100 baseline.
    pub transformer_speedup: f64,
}

impl CambriconD {
    /// Calibrated against Fig. 19(b): DiT (0% conv) pins the transformer
    /// speedup at 3.3×; the conv speedup is set so conv-heavy workloads land
    /// near the reported Stable Diffusion advantage.
    pub fn paper_calibrated() -> Self {
        Self {
            conv_speedup: 16.0,
            transformer_speedup: 3.3,
        }
    }

    /// Overall speedup over the A100 on a workload whose convolutional share
    /// of operations is `conv_share` (weighted harmonic mean — Amdahl over
    /// the two portions).
    ///
    /// # Panics
    ///
    /// Panics if `conv_share` is outside `[0, 1]`.
    pub fn speedup_over_gpu(&self, conv_share: f64) -> f64 {
        assert!((0.0..=1.0).contains(&conv_share), "conv share range");
        1.0 / (conv_share / self.conv_speedup + (1.0 - conv_share) / self.transformer_speedup)
    }

    /// Speedup for one benchmark, reading the conv share from its config
    /// (`resblock_ops_share` — the portion EXION also leaves unoptimized).
    pub fn speedup_for_model(&self, config: &ModelConfig) -> f64 {
        self.speedup_over_gpu(config.paper.resblock_ops_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exion_model::config::ModelKind;

    #[test]
    fn transformer_only_matches_calibration() {
        let cd = CambriconD::paper_calibrated();
        let dit = ModelConfig::for_kind(ModelKind::Dit);
        let s = cd.speedup_for_model(&dit);
        assert!((s - 3.3).abs() < 0.01, "got {s}");
    }

    #[test]
    fn conv_share_increases_speedup() {
        let cd = CambriconD::paper_calibrated();
        assert!(cd.speedup_over_gpu(0.33) > cd.speedup_over_gpu(0.0));
        assert!(cd.speedup_over_gpu(1.0) > cd.speedup_over_gpu(0.33));
        assert!((cd.speedup_over_gpu(1.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn stable_diffusion_beats_dit_for_cambricon() {
        // The structural Fig. 19(b) result from Cambricon-D's side.
        let cd = CambriconD::paper_calibrated();
        let sd = cd.speedup_for_model(&ModelConfig::for_kind(ModelKind::StableDiffusion));
        let dit = cd.speedup_for_model(&ModelConfig::for_kind(ModelKind::Dit));
        assert!(sd > dit, "SD {sd} vs DiT {dit}");
    }

    #[test]
    #[should_panic(expected = "conv share range")]
    fn conv_share_validated() {
        let _ = CambriconD::paper_calibrated().speedup_over_gpu(1.5);
    }
}
