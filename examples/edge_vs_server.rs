//! Edge vs server deployment: EXION4 against the Jetson Orin Nano and
//! EXION24 against the RTX 6000 Ada on a motion benchmark (Figs. 18/19 in
//! miniature).
//!
//! ```sh
//! cargo run --release --example edge_vs_server
//! ```

use exion::gpu::diffusion_cost::estimate_generation;
use exion::gpu::GpuSpec;
use exion::model::{ModelConfig, ModelKind};
use exion::sim::config::HwConfig;
use exion::sim::perf::{simulate_model, SimAblation};
use exion::sim::workload::SparsityProfile;

fn main() {
    let model = ModelConfig::for_kind(ModelKind::Mdm);
    let profile = SparsityProfile::analytic(
        model.ffn_reuse.target_sparsity,
        model.ep.paper_sparsity_pct / 100.0,
        16,
    );
    println!("benchmark: {} at batch 1\n", model.kind.name());

    for (hw, gpu) in [
        (HwConfig::exion4(), GpuSpec::jetson_orin_nano()),
        (HwConfig::exion24(), GpuSpec::rtx6000_ada()),
    ] {
        let exion = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
        let gpu_cost = estimate_generation(&gpu, &model, 1);
        println!("{} vs {}:", hw.name, gpu.name);
        println!(
            "  latency : {:>9.2} ms vs {:>9.2} ms  ({:.0}x speedup)",
            exion.latency_ms,
            gpu_cost.latency_ms,
            gpu_cost.latency_ms / exion.latency_ms,
        );
        println!(
            "  energy  : {:>9.1} mJ vs {:>9.1} mJ",
            exion.energy_mj, gpu_cost.energy_mj,
        );
        println!(
            "  TOPS/W  : {:>9.2}    vs {:>9.4}    ({:.0}x efficiency gain)\n",
            exion.tops_per_watt,
            gpu_cost.tops_per_watt(),
            exion.tops_per_watt / gpu_cost.tops_per_watt(),
        );
    }
    println!("(paper: up to 1090.9x speedup / 4668.2x efficiency over the edge GPU,");
    println!(" up to 379.3x / 3067.6x over the server GPU)");
}
