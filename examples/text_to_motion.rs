//! Text-to-motion generation (MLD / MDM class) with distribution-level
//! accuracy metrics across the ablation stack — the Table I experiment in
//! miniature.
//!
//! ```sh
//! cargo run --release --example text_to_motion
//! ```

use exion::model::{Ablation, GenerationPipeline, ModelConfig, ModelKind};
use exion::tensor::stats;

fn main() {
    for kind in [ModelKind::Mld, ModelKind::Mdm] {
        let mut config = ModelConfig::for_kind(kind);
        config.iterations = 25;
        let prompt = "he jumped over the fence in one smooth motion";
        println!("== {} ({}) ==", config.kind.name(), config.kind.task());

        let mut vanilla = GenerationPipeline::new(&config, exion::model::ExecPolicy::vanilla(), 5);
        let (reference, _) = vanilla.generate(prompt, 11);
        let reference_batch = vanilla.generate_batch(prompt, 4, 100);

        for ablation in [Ablation::FfnReuse, Ablation::FfnReuseEpQuant] {
            let mut p = GenerationPipeline::new(&config, ablation.policy(&config), 5);
            let (motion, _) = p.generate(prompt, 11);
            let batch = p.generate_batch(prompt, 4, 100);
            println!(
                "  {:<22} PSNR {:>5.1} dB | cosine {:>6.4} | proxy-FID {:>8.4}",
                ablation.name(),
                stats::psnr(&reference, &motion),
                stats::cosine_similarity(reference.as_slice(), motion.as_slice()),
                stats::proxy_fid(&reference_batch, &batch, 16, 7),
            );
        }
        println!();
    }
    println!("(paper Table I: all methods show trivial metric differences vs vanilla)");
}
