//! Quickstart: run a diffusion generation with EXION's FFN-Reuse and see the
//! inter-iteration output sparsity it creates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exion::model::{Ablation, GenerationPipeline, ModelConfig, ModelKind};

fn main() {
    // The MLD text-to-motion benchmark at simulation scale.
    let config = ModelConfig::for_kind(ModelKind::Mld);
    println!(
        "benchmark: {} ({}), {} iterations, N = {} sparse iterations per dense",
        config.kind.name(),
        config.kind.task(),
        config.iterations,
        config.ffn_reuse.sparse_iters,
    );

    // Build the pipeline with the paper's FFN-Reuse settings and generate.
    let policy = Ablation::FfnReuse.policy(&config);
    let mut pipeline = GenerationPipeline::new(&config, policy, 42);
    let (motion, report) = pipeline.generate("a person walks forward and waves", 7);

    println!(
        "generated a {}x{} motion latent (first row: {:.3?} …)",
        motion.rows(),
        motion.cols(),
        &motion.row(0)[..4.min(motion.cols())]
    );
    println!(
        "inter-iteration output sparsity : {:.1}% (paper target {:.0}%)",
        100.0 * report.mean_inter_iteration_sparsity(),
        100.0 * config.ffn_reuse.target_sparsity,
    );
    println!(
        "FFN MACs skipped                : {:.1}% (paper: {:.2}%)",
        100.0 * report.ffn_ops().reduction(),
        config.ffn_reuse.paper_op_reduction_pct,
    );
    println!(
        "total MACs performed            : {} of {} dense",
        report.total_ops().performed,
        report.total_ops().dense,
    );
}
