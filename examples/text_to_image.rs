//! Text-to-image (Stable-Diffusion-class) generation under the full EXION
//! ablation stack, with ConMerge compaction of the resulting output sparsity.
//!
//! ```sh
//! cargo run --release --example text_to_image
//! ```

use exion::core::conmerge::{CompactionConfig, TileCompactor};
use exion::model::{Ablation, GenerationPipeline, ModelConfig, ModelKind};
use exion::tensor::stats;

fn main() {
    let mut config = ModelConfig::for_kind(ModelKind::StableDiffusion);
    config.iterations = 20; // keep the example snappy
    let prompt = "a corgi dog surfing a wave with a bright yellow surfboard";
    println!("prompt: {prompt}\n");

    // Vanilla reference.
    let mut vanilla = GenerationPipeline::new(&config, exion::model::ExecPolicy::vanilla(), 1);
    let (reference, _) = vanilla.generate(prompt, 99);

    // Each ablation row of the paper's Table I.
    for ablation in [
        Ablation::FfnReuse,
        Ablation::FfnReuseEp,
        Ablation::FfnReuseEpQuant,
    ] {
        let mut p = GenerationPipeline::new(&config, ablation.policy(&config), 1);
        let (image, report) = p.generate(prompt, 99);
        println!(
            "{:<22} PSNR vs vanilla {:>5.1} dB | inter-sparsity {:>4.1}% | intra-sparsity {:>4.1}% | MACs skipped {:>4.1}%",
            ablation.name(),
            stats::psnr(&reference, &image),
            100.0 * report.mean_inter_iteration_sparsity(),
            100.0 * report.mean_intra_iteration_sparsity(),
            100.0 * report.total_ops().reduction(),
        );
    }

    // Show what ConMerge does with the FFN output sparsity.
    let policy = Ablation::FfnReuseEp.policy(&config).with_mask_capture();
    let mut p = GenerationPipeline::new(&config, policy, 1);
    let (_, report) = p.generate(prompt, 99);
    let compactor = TileCompactor::new(CompactionConfig::default());
    if let Some(mask) = report.ffn_masks().first() {
        let r = compactor.compact_matrix(mask);
        println!(
            "\nConMerge on one FFN output bitmask ({}x{}, {:.1}% sparse):",
            mask.rows(),
            mask.cols(),
            100.0 * mask.sparsity(),
        );
        println!(
            "  condensing leaves {:.1}% of columns; condense+merge leaves {:.1}% of blocks",
            100.0 * r.global_condense_fraction(),
            100.0 * r.remaining_column_fraction(),
        );
        println!(
            "  CVG spent {} cycles generating ConMerge vectors",
            r.cvg_cycles
        );
    }
}
