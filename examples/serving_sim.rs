//! Serving-traffic simulation: sweep the arrival rate across traffic
//! patterns and hardware instances to find each deployment's saturation
//! knee, then compare admission policies at high load.
//!
//! ```sh
//! cargo run --release --example serving_sim
//! ```

use exion::serve::{Policy, ServeConfig, ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix};
use exion::sim::config::HwConfig;

fn main() {
    let mix = WorkloadMix::multi_tenant();
    let horizon_ms = 4_000.0;
    let load_fractions = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5];

    for hw in [HwConfig::exion4(), HwConfig::exion24()] {
        let mut sim = ServeSimulator::new(ServeConfig::new(hw));
        let capacity = sim.capacity_estimate_rps(&mix);
        println!(
            "== {} | 1 instance, max batch {}, mixed multi-tenant traffic \
             (est. capacity {:.1} rps)",
            hw.name,
            sim.config().max_batch,
            capacity,
        );

        for pattern in TrafficPattern::standard_suite() {
            println!("-- {} arrivals", pattern.name());
            for frac in load_fractions {
                let trace = TraceConfig {
                    pattern: pattern.with_mean_rps(frac * capacity),
                    horizon_ms,
                    seed: 42,
                    mix: mix.clone(),
                };
                let report = sim.run(&trace);
                println!("  load {:>3.0}% {}", 100.0 * frac, report.summary_line());
            }
        }
        println!();
    }

    // Policy comparison at heavy (90% of capacity) Poisson load on the
    // server instance: EDF trades mean latency for SLO attainment, and the
    // sparsity-aware batcher buys back sparse iterations.
    let hw = HwConfig::exion24();
    println!("== {} | policy comparison at 90% load", hw.name);
    for policy in Policy::ALL {
        let mut sim = ServeSimulator::new(ServeConfig::new(hw).with_policy(policy));
        let capacity = sim.capacity_estimate_rps(&mix);
        let trace = TraceConfig {
            pattern: TrafficPattern::Poisson {
                rate_rps: 0.9 * capacity,
            },
            horizon_ms,
            seed: 42,
            mix: mix.clone(),
        };
        let report = sim.run(&trace);
        println!(
            "  {:>15}: p99 {:>9.2} ms | SLO {:>5.1}% | sparse iters {:>5.1}% | {:.3} J/req",
            policy.name(),
            report.latency.p99,
            100.0 * report.slo_attainment,
            100.0 * report.sparse_iteration_frac,
            report.joules_per_request,
        );
    }
}
