//! Serving-traffic simulation: sweep the arrival rate across traffic
//! patterns and hardware instances to find each deployment's saturation
//! knee, compare scheduling policies at high load, measure what
//! iteration-boundary preemption buys the urgent tenant class under bursty
//! traffic, and show deadline-feasibility admission turning goodput
//! collapse into saturation.
//!
//! ```sh
//! cargo run --release --example serving_sim
//! ```
//!
//! `EXION_SERVE_HORIZON_MS` caps the trace horizon (CI smoke runs use a
//! small value; the default is the full 4 s trace).
//! `EXION_SERVE_MODE=sharded` runs only the replicated-vs-sharded
//! comparison (the CI sharded smoke step).
//! `EXION_SERVE_MODE=planned` runs only the placement-planner comparison
//! (the CI planner smoke step).
//! `EXION_SERVE_ADMISSION=<name>` runs only the admission comparison,
//! with `<name>` (an admission-registry name, e.g. `deadline`) validated
//! against the registry (the CI admission smoke step).
//! `EXION_SERVE_TRACE=<path>` additionally runs one representative traced
//! scenario for the selected mode and writes its timeline as Chrome
//! trace-event JSON to `<path>` (load in Perfetto or `chrome://tracing`).
//! `EXION_SERVE_ATTRIB=<path>` writes the representative scenario's full
//! latency-attribution report (per-request phase breakdowns, miss
//! forensics) as JSON to `<path>`; the attribution table the example
//! prints per mode comes from the same representative run.
//! `EXION_SERVE_BENCH=<path>` self-meters the standard perf-trajectory
//! scenarios and writes the `BENCH_serve.json` document to `<path>`
//! (`EXION_SWEEP_THREADS=<k>` fans the independent scenario runs across
//! `k` scoped threads; the export is byte-identical at any thread count).
//! `EXION_SERVE_DEEP_ARRIVALS=<n>` additionally appends the deep-backlog
//! point (bursty MMPP at 2x capacity, admit-all, `n` arrivals) — the
//! committed file carries `n = 100_000`.
//! `EXION_SERVE_FLEET_ARRIVALS=<n>` additionally appends the fleet-scale
//! point (102 scheduling units, `n` lazily streamed arrivals) to that
//! document — the committed file carries `n = 1_000_000`.
//! `EXION_SERVE_CHAOS_ARRIVALS=<n>` additionally appends the chaos point
//! (the mixed fleet under a seeded crash plan with checkpointing).
//! `EXION_SERVE_FAULTS=<spec>` injects a fault plan into every scenario
//! this example builds itself (the load sweeps, the policy/preemption
//! comparisons, and the traced scenario of whichever mode is selected):
//! a comma-separated `key=value` list (`crashes=2,seed=7,mtbf_ms=900`,
//! or a directed `unit=0,at_ms=600,repair_ms=300`, optionally
//! `member=<m>`, plus `degrade=<x>,degrade_ms=<w>`) or a bare preset
//! name (`midpoint-crash`, `member-loss`, `ring-degrade`). The chaos
//! comparison section (faults on vs off at matched load) always runs in
//! the default mode.

use exion::serve::{
    admission, attribution_json, chrome_trace_json, policy, FaultPlan, MemorySink, MissCause,
    Phase, Placement, PlacementPlanner, PlannerConfig, ServeConfig, ServeConfigBuilder,
    ServeSimulator, TraceConfig, TrafficPattern, WorkloadMix,
};
use exion::sim::config::HwConfig;
use exion::sim::partition::PartitionStrategy;
use exion_bench::experiments::serve_sweep::{
    admission_comparison, chaos_comparison, chaos_point, deep_backlog_point, fleet_scale_point,
    goodput_crossover, perf_trajectory, perf_trajectory_json, planner_comparison,
    sharding_comparison,
};
use exion_model::config::ModelKind;

fn horizon_ms() -> f64 {
    std::env::var("EXION_SERVE_HORIZON_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.max(100.0))
        .unwrap_or(4_000.0)
}

/// `EXION_SERVE_FAULTS=<spec>`: the fault plan every example-built
/// scenario runs under (`None` when the knob is unset — the default,
/// byte-identical to a build without the fault subsystem).
fn fault_plan_from_env(horizon_ms: f64) -> Option<FaultPlan> {
    let spec = std::env::var("EXION_SERVE_FAULTS").ok()?;
    let plan = FaultPlan::from_env_spec(&spec, horizon_ms)
        .unwrap_or_else(|e| panic!("EXION_SERVE_FAULTS: {e}"));
    (!plan.is_empty()).then_some(plan)
}

/// Applies the `EXION_SERVE_FAULTS` plan (if any) to a config under
/// construction.
fn with_env_faults(builder: ServeConfigBuilder, horizon_ms: f64) -> ServeConfigBuilder {
    match fault_plan_from_env(horizon_ms) {
        Some(plan) => builder.fault_plan(plan),
        None => builder,
    }
}

/// Prints a run's fault accounting and asserts the extended conservation
/// law (`served + shed + lost == arrivals`) the chaos CI smoke pins.
fn report_chaos(report: &exion::serve::ServeReport) {
    assert_eq!(
        report.completed + report.shed_requests + report.lost_requests,
        report.arrivals,
        "conservation: every released arrival must be served, shed, or lost"
    );
    let Some(f) = &report.fault else {
        return;
    };
    println!(
        "  chaos: {} injected ({} noop) | {} lost | {} checkpoint-recovered | \
         {} re-plan(s) | {} recovered (mean {:.0} ms) | SLO under failure {:.1}%",
        f.faults_injected,
        f.faults_noop,
        f.lost_requests,
        f.checkpointed_recoveries,
        f.replans_triggered,
        f.recoveries,
        f.mean_time_to_recover_ms,
        100.0 * f.attainment_under_failure,
    );
}

/// Chaos comparison: SLO attainment with faults on vs off at matched
/// load, replicated x2 vs one TP=2 gang. Replicas degrade gracefully; a
/// gang losing one member loses the whole gang's capacity until repair.
fn chaos_section(horizon_ms: f64) {
    println!(
        "== EXION4 | fault injection at 60% load (text-to-video, one \
         instance lost mid-horizon)"
    );
    for c in chaos_comparison(&HwConfig::exion4(), Some(horizon_ms)) {
        let f = c.faulted.fault.clone().unwrap_or_default();
        println!(
            "  {:>14} | no faults: SLO {:>5.1}% goodput {:>5.2} rps | {}: \
             SLO {:>5.1}% (in-window {:>5.1}%) | {} lost, {} requeued",
            c.label,
            100.0 * c.baseline.slo_attainment,
            c.baseline.goodput_rps,
            c.fault,
            100.0 * c.faulted.slo_attainment,
            100.0 * f.attainment_under_failure,
            f.lost_requests,
            f.records.iter().map(|r| r.requeued).sum::<usize>(),
        );
        report_chaos(&c.faulted);
    }
}

/// Replicated-vs-sharded comparison: two whole-model replicas vs one TP=2
/// gang vs one PP=2 gang on the working-set-exceeding VideoCrafter2 mix.
fn sharded_comparison(horizon_ms: f64) {
    println!(
        "== EXION4 | replicated vs sharded on a 2-instance budget \
         (text-to-video: VideoCrafter2 exceeds one GSC)"
    );
    let sweeps = sharding_comparison(&HwConfig::exion4(), Some(horizon_ms));
    for sweep in &sweeps {
        println!("-- {}", sweep.label);
        for p in &sweep.points {
            let r = &p.report;
            println!(
                "  load {:>3.0}% | p50 {:>8.1} ms | p95 {:>8.1} ms | goodput {:>5.2} rps | \
                 GSC hit {:>5.1}% | collectives {:>7.1} ms",
                100.0 * p.load_frac,
                r.latency.p50,
                r.latency.p95,
                r.goodput_rps,
                100.0 * r.residency_hit_rate,
                r.collective_ms,
            );
        }
    }
    for sharded in &sweeps[1..] {
        match goodput_crossover(&sweeps[0], sharded) {
            Some(frac) => println!(
                "  {} vs replicated: goodput leader flips at {:.0}% load",
                sharded.label,
                100.0 * frac
            ),
            None => println!(
                "  {} vs replicated: one placement leads across the swept range",
                sharded.label
            ),
        }
    }
}

/// Placement-planner comparison: auto-placement vs every hand-picked
/// static placement on the text-to-video mix and a 2-instance budget, plus
/// the diurnal online re-planning run (the CI planner smoke step).
fn planned_comparison(horizon_ms: f64) {
    println!(
        "== EXION4 | placement planner vs hand-picked placements \
         (text-to-video, 2-instance budget)"
    );
    let cmp = planner_comparison(&HwConfig::exion4(), Some(horizon_ms));
    for (label, points) in cmp
        .static_sweeps
        .iter()
        .map(|s| (s.label.clone(), &s.points))
        .chain(std::iter::once(("planned".to_string(), &cmp.planned)))
    {
        println!("-- {label}");
        for p in points {
            let r = &p.report;
            println!(
                "  load {:>3.0}% | p50 {:>8.1} ms | p95 {:>8.1} ms | goodput {:>5.2} rps | \
                 SLO {:>5.1}%",
                100.0 * p.load_frac,
                r.latency.p50,
                r.latency.p95,
                r.goodput_rps,
                100.0 * r.slo_attainment,
            );
        }
    }
    for (frac, pick) in &cmp.picks {
        println!("  planner pick at {:.0}% load: {pick}", 100.0 * frac);
    }
    if let Some(pr) = &cmp.diurnal.planner {
        println!(
            "  diurnal ramp: {} -> {} | {} re-plan(s), {:.1} MB migrated, \
             mean forecast error {:.0}%",
            pr.initial_placement,
            pr.final_placement,
            pr.replan_count(),
            pr.migration_bytes() as f64 / 1e6,
            100.0 * pr.mean_forecast_error(),
        );
        for r in &pr.replans {
            println!(
                "    re-plan at {:>6.0} ms: {} -> {} ({:.1} MB re-streamed, {} drained)",
                r.at_ms,
                r.from,
                r.to,
                r.migration_bytes as f64 / 1e6,
                r.drained_requests,
            );
        }
    }
}

/// Admission-control comparison on the bursty MMPP text-to-motion trace:
/// the admit-all baseline vs `subject` (an admission-registry name) —
/// load shedding turns goodput collapse past the knee into saturation.
fn admission_section(horizon_ms: f64, subject: &str) {
    println!(
        "== EXION24 | admission control, bursty MMPP text-to-motion trace (EDF)\n\
         (deadline sheds/degrades arrivals whose projected completion misses the SLO)"
    );
    let sweeps = admission_comparison(&HwConfig::exion24(), Some(horizon_ms));
    let shown: Vec<_> = sweeps
        .iter()
        .filter(|s| s.label == "admit-all" || s.label == subject)
        .collect();
    for sweep in &shown {
        println!("-- {}", sweep.label);
        for p in &sweep.points {
            let r = &p.report;
            println!(
                "  load {:>3.0}% | goodput {:>6.1} rps | SLO {:>5.1}% | \
                 shed {:>4} ({:>4.1}%) | degraded {:>4} | p95 {:>7.1} ms",
                100.0 * p.load_frac,
                r.goodput_rps,
                100.0 * r.slo_attainment,
                r.shed_requests,
                100.0 * r.shed_rate(),
                r.degraded_requests,
                r.latency.p95,
            );
        }
    }
    match &shown[..] {
        [admit_all, shedding] => {
            let a = &admit_all.points.last().expect("swept points").report;
            let d = &shedding.points.last().expect("swept points").report;
            let verdict = if d.goodput_rps > a.goodput_rps {
                "shedding turned the collapse into saturation"
            } else {
                "no win at this horizon — expected only past the knee on long traces"
            };
            println!(
                "  past the knee: goodput {:.1} rps (admit-all) vs {:.1} rps ({}); {}",
                a.goodput_rps, d.goodput_rps, shedding.label, verdict,
            );
        }
        _ => println!(
            "  subject {subject:?} is the admit-all baseline itself — \
             no comparison to draw"
        ),
    }
}

/// One representative scenario per example mode — the run the Chrome
/// trace export, the attribution table, and the attribution JSON export
/// all share, so the three observability surfaces describe the same
/// simulated traffic.
fn representative_scenario(horizon_ms: f64, mode: &str) -> (ServeConfigBuilder, TraceConfig) {
    let hw = HwConfig::exion4();
    let capacity = ServeSimulator::new(ServeConfig::new(hw))
        .capacity_estimate_rps(&WorkloadMix::multi_tenant());
    match mode {
        // Auto-placement over a diurnal ramp: re-plans show up as replan
        // instants and migration-drain slices.
        "planned" => (
            ServeConfig::builder(hw).auto_placement(
                PlacementPlanner::new(
                    PlannerConfig::new(2).with_replanning(horizon_ms / 4.0, 0.35),
                ),
                0.3 * capacity,
            ),
            TraceConfig {
                pattern: TrafficPattern::Diurnal {
                    peak_rps: 0.9 * capacity,
                    trough_frac: 0.3,
                },
                horizon_ms,
                seed: 42,
                mix: WorkloadMix::text_to_video(),
            },
        ),
        // A TP=2 gang: every iteration carries collective slices on both
        // member tracks.
        "sharded" => (
            ServeConfig::builder(hw)
                .placement(Placement::sharded(1, PartitionStrategy::Tensor { ways: 2 })),
            TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.8 * capacity,
                },
                horizon_ms,
                seed: 42,
                mix: WorkloadMix::text_to_video(),
            },
        ),
        // Deadline admission past the knee: shed terminals and degraded
        // admissions join the span chains.
        "admission" => (
            ServeConfig::builder(hw)
                .policy_name("preemptive-edf")
                .admission_name("deadline"),
            TraceConfig {
                pattern: TrafficPattern::Bursty {
                    rate_rps: 1.0,
                    burst_multiplier: 4.0,
                    mean_dwell_ms: 400.0,
                }
                .with_mean_rps(1.3 * capacity),
                horizon_ms,
                seed: 42,
                mix: WorkloadMix::multi_tenant(),
            },
        ),
        // Default: the single-instance multi-tenant batcher at 90% load.
        _ => (
            ServeConfig::builder(hw).policy_name("sparsity-aware"),
            TraceConfig {
                pattern: TrafficPattern::Poisson {
                    rate_rps: 0.9 * capacity,
                },
                horizon_ms,
                seed: 42,
                mix: WorkloadMix::multi_tenant(),
            },
        ),
    }
}

/// `EXION_SERVE_TRACE=<path>`: run one representative traced scenario for
/// `mode` and dump its timeline as Chrome trace-event JSON. The traced
/// run is dedicated (the comparisons above stay untraced), and telemetry
/// is a pure observer, so the numbers printed elsewhere are unaffected.
fn maybe_export_chrome_trace(horizon_ms: f64, mode: &str) {
    let Ok(path) = std::env::var("EXION_SERVE_TRACE") else {
        return;
    };
    let (config, trace) = representative_scenario(horizon_ms, mode);
    let mut sink = MemorySink::new();
    let mut sim = ServeSimulator::new(with_env_faults(config, horizon_ms).build());
    let report = sim.run_traced(&trace, &mut sink);
    let json = chrome_trace_json(&sink);
    std::fs::write(&path, &json).expect("write Chrome trace");
    let profile = sim.last_run_profile().expect("traced run leaves a profile");
    println!(
        "wrote Chrome trace for mode {mode:?} to {path}: {} spans, {} slices, \
         {} instants over {} requests ({:.0} sim-ms/wall-ms)",
        sink.spans.len(),
        sink.slices.len(),
        sink.instants.len(),
        report.arrivals,
        profile.sim_ms_per_wall_ms(),
    );
    report_chaos(&report);
    if fault_plan_from_env(horizon_ms).is_some() {
        // The CI chaos smoke pins this: the traced scenario is busy at
        // every mode's fault times, so the plan must actually kill
        // something (a plan that only no-ops means the knob is wired to
        // nothing).
        let f = report.fault.as_ref().expect("chaos run carries a report");
        assert!(
            f.faults_injected > 0,
            "EXION_SERVE_FAULTS fired only no-ops against the traced scenario"
        );
        assert!(
            sink.instants.iter().any(|i| i.name == "fault"),
            "injected faults must appear as trace instants"
        );
    }
}

/// Prints a report's latency-attribution table: per-phase share of the
/// aggregate breakdown with tail quantiles, the dominant bottleneck
/// phases, classified miss causes, and the worst-overshoot forensics rows.
fn print_attribution(report: &exion::serve::ServeReport) {
    let Some(a) = &report.attribution else {
        return;
    };
    println!(
        "  latency attribution | {} requests, {} missed",
        a.requests.len(),
        a.missed_requests(),
    );
    let grand = a.totals.total_ms().max(1e-9);
    for (phase, stats) in Phase::ALL.iter().zip(&a.phase_stats) {
        let total = a.totals.get(*phase);
        if total <= 0.0 {
            continue;
        }
        println!(
            "    {:>15} | {:>5.1}% of latency | p50 {:>8.2} ms | p95 {:>8.2} ms | \
             max {:>8.2} ms",
            phase.label(),
            100.0 * total / grand,
            stats.p50,
            stats.p95,
            stats.max,
        );
    }
    if let (Some(p50), Some(p95)) = (a.dominant_p50, a.dominant_p95) {
        println!(
            "    bottleneck: {} dominates the median request, {} the p95 tail",
            p50.label(),
            p95.label(),
        );
    }
    if let Some(missed) = a.missed_dominant_p95 {
        println!(
            "    missed requests spend their p95 tail in {}",
            missed.label()
        );
    }
    let causes: Vec<String> = MissCause::ALL
        .iter()
        .zip(&a.miss_causes)
        .filter(|(_, &n)| n > 0)
        .map(|(c, n)| format!("{} x{n}", c.label()))
        .collect();
    if !causes.is_empty() {
        println!("    miss causes: {}", causes.join(", "));
    }
    for m in a.top_misses.iter().take(3) {
        println!(
            "    worst miss: request {} ({}) overshot its {:.0} ms SLO by {:>7.1} ms \
             ({}, dominant {})",
            m.id,
            m.model.name(),
            m.slo_ms,
            m.overshoot_ms,
            m.cause.label(),
            m.dominant.map_or("-", |p| p.label()),
        );
    }
}

/// Attribution forensics for the selected mode: run the representative
/// scenario (untraced — attribution needs no sink), print its phase
/// table, and honor `EXION_SERVE_ATTRIB=<path>` by writing the full
/// attribution report as JSON.
fn attribution_section(horizon_ms: f64, mode: &str) {
    let (config, trace) = representative_scenario(horizon_ms, mode);
    let report = ServeSimulator::new(with_env_faults(config, horizon_ms).build()).run(&trace);
    println!("== latency attribution | representative {mode:?} scenario");
    print_attribution(&report);
    report_chaos(&report);
    if let Ok(path) = std::env::var("EXION_SERVE_ATTRIB") {
        let attrib = report
            .attribution
            .as_ref()
            .expect("attribution is on by default");
        let json = attribution_json(attrib);
        assert!(
            exion::serve::telemetry::json::is_well_formed(&json),
            "attribution export must be well-formed JSON"
        );
        std::fs::write(&path, &json).expect("write attribution JSON");
        println!(
            "  wrote attribution report for mode {mode:?} to {path}: {} requests, \
             {} forensics rows",
            attrib.requests.len(),
            attrib.top_misses.len(),
        );
    }
}

/// `EXION_SERVE_BENCH=<path>`: self-meter the standard perf-trajectory
/// scenarios and write the `BENCH_serve.json` document.
fn maybe_export_bench(horizon_ms: f64) {
    let Ok(path) = std::env::var("EXION_SERVE_BENCH") else {
        return;
    };
    let mut points = perf_trajectory(Some(horizon_ms));
    // `EXION_SERVE_DEEP_ARRIVALS=<n>`: append the deep-backlog point —
    // bursty MMPP at 2x capacity under admit-all, so the ready queue grows
    // to order n/2 before the drain. The committed BENCH_serve.json
    // carries n = 100_000.
    if let Ok(n) = std::env::var("EXION_SERVE_DEEP_ARRIVALS") {
        let target: usize = n
            .parse()
            .expect("EXION_SERVE_DEEP_ARRIVALS must be an integer");
        points.push(deep_backlog_point(target));
    }
    // `EXION_SERVE_FLEET_ARRIVALS=<n>`: append the fleet-scale point —
    // 100+ scheduling units driven by n lazily streamed arrivals. The
    // committed BENCH_serve.json carries n = 1_000_000.
    if let Ok(n) = std::env::var("EXION_SERVE_FLEET_ARRIVALS") {
        let target: usize = n
            .parse()
            .expect("EXION_SERVE_FLEET_ARRIVALS must be an integer");
        points.push(fleet_scale_point(90, 12, target));
    }
    // `EXION_SERVE_CHAOS_ARRIVALS=<n>`: append the chaos point — the
    // mixed fleet under a seeded crash plan with periodic latent
    // checkpointing, pricing teardown drains, out-of-cadence re-plans,
    // and recovery refills into the metered wall clock.
    if let Ok(n) = std::env::var("EXION_SERVE_CHAOS_ARRIVALS") {
        let target: usize = n
            .parse()
            .expect("EXION_SERVE_CHAOS_ARRIVALS must be an integer");
        points.push(chaos_point(target));
    }
    std::fs::write(&path, perf_trajectory_json(&points)).expect("write BENCH_serve.json");
    println!(
        "wrote perf trajectory ({} scenarios) to {path}",
        points.len()
    );
    for p in &points {
        println!(
            "  {:>30}: {:>8} arrivals | {:>8} iters | {:>8} events (peak heap {:>4}) | \
             sim {:>9.0} ms | wall {:>8.1} ms | {:>5.0} sim-ms/wall-ms",
            p.scenario,
            p.arrivals,
            p.profile.iterations,
            p.profile.events_executed,
            p.profile.peak_calendar_events,
            p.profile.makespan_ms,
            p.profile.wall_ms,
            p.profile.sim_ms_per_wall_ms(),
        );
    }
}

fn main() {
    let mix = WorkloadMix::multi_tenant();
    let horizon_ms = horizon_ms();
    maybe_export_bench(horizon_ms);
    if std::env::var("EXION_SERVE_MODE").as_deref() == Ok("sharded") {
        // CI sharded smoke: just the gang-scheduling path.
        sharded_comparison(horizon_ms);
        attribution_section(horizon_ms, "sharded");
        maybe_export_chrome_trace(horizon_ms, "sharded");
        return;
    }
    if std::env::var("EXION_SERVE_MODE").as_deref() == Ok("planned") {
        // CI planner smoke: auto-placement (offline picks + online
        // re-planning) only.
        planned_comparison(horizon_ms);
        attribution_section(horizon_ms, "planned");
        maybe_export_chrome_trace(horizon_ms, "planned");
        return;
    }
    if let Ok(name) = std::env::var("EXION_SERVE_ADMISSION") {
        // CI admission smoke: run only the admission comparison, with the
        // named controller (validated against the registry) as its subject
        // next to the admit-all baseline.
        assert!(
            admission::by_name(&name).is_some(),
            "unknown admission controller {name:?}; built-ins: {:?}",
            admission::BUILTIN_ADMISSION_NAMES
        );
        admission_section(horizon_ms, &name);
        attribution_section(horizon_ms, "admission");
        maybe_export_chrome_trace(horizon_ms, "admission");
        return;
    }
    let load_fractions = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5];

    for hw in [HwConfig::exion4(), HwConfig::exion24()] {
        let mut sim =
            ServeSimulator::new(with_env_faults(ServeConfig::builder(hw), horizon_ms).build());
        let capacity = sim.capacity_estimate_rps(&mix);
        println!(
            "== {} | 1 instance, max batch {}, mixed multi-tenant traffic \
             (est. capacity {:.1} rps)",
            hw.name,
            sim.config().max_batch,
            capacity,
        );

        for pattern in TrafficPattern::standard_suite() {
            println!("-- {} arrivals", pattern.name());
            for frac in load_fractions {
                let trace = TraceConfig {
                    pattern: pattern.with_mean_rps(frac * capacity),
                    horizon_ms,
                    seed: 42,
                    mix: mix.clone(),
                };
                let report = sim.run(&trace);
                println!("  load {:>3.0}% {}", 100.0 * frac, report.summary_line());
                report_chaos(&report);
            }
        }
        println!();
    }

    // Policy comparison at heavy (90% of capacity) Poisson load on the
    // server instance: EDF trades mean latency for SLO attainment, the
    // sparsity-aware batcher buys back sparse iterations, and preemptive
    // EDF protects the tight-SLO tenants. Policies come from the registry,
    // so a custom-registered policy would join this loop unchanged.
    let hw = HwConfig::exion24();
    println!("== {} | policy comparison at 90% load", hw.name);
    for policy in policy::builtin_policies() {
        let mut sim = ServeSimulator::new(
            with_env_faults(
                ServeConfig::builder(hw).policy_arc(policy.clone()),
                horizon_ms,
            )
            .build(),
        );
        let capacity = sim.capacity_estimate_rps(&mix);
        let trace = TraceConfig {
            pattern: TrafficPattern::Poisson {
                rate_rps: 0.9 * capacity,
            },
            horizon_ms,
            seed: 42,
            mix: mix.clone(),
        };
        let report = sim.run(&trace);
        println!(
            "  {:>15}: p99 {:>9.2} ms | SLO {:>5.1}% | sparse iters {:>5.1}% | \
             GSC hit {:>5.1}% | {:.3} J/req",
            policy.name(),
            report.latency.p99,
            100.0 * report.slo_attainment,
            100.0 * report.sparse_iteration_frac,
            100.0 * report.residency_hit_rate,
            report.joules_per_request,
        );
    }

    // Preemption under bursty multi-tenant traffic: a heavy Stable
    // Diffusion generation head-of-line blocks the urgent motion tenants
    // for up to a full generation unless the batcher can park its latents
    // at an iteration boundary and switch.
    println!(
        "\n== {} | preemptive vs non-preemptive EDF, bursty MMPP at 85% load",
        hw.name
    );
    let mut urgent_p95 = Vec::new();
    for name in ["edf", "preemptive-edf"] {
        let mut sim = ServeSimulator::new(
            with_env_faults(ServeConfig::builder(hw).policy_name(name), horizon_ms).build(),
        );
        let capacity = sim.capacity_estimate_rps(&mix);
        let trace = TraceConfig {
            pattern: TrafficPattern::Bursty {
                rate_rps: 1.0,
                burst_multiplier: 4.0,
                mean_dwell_ms: 400.0,
            }
            .with_mean_rps(0.85 * capacity),
            horizon_ms,
            seed: 42,
            mix: mix.clone(),
        };
        let report = sim.run(&trace);
        let mld = report.class_latency(ModelKind::Mld).p95;
        urgent_p95.push(mld);
        println!(
            "  {:>15}: MLD p95 {:>8.1} ms | MDM p95 {:>8.1} ms | SD p95 {:>9.1} ms | \
             SLO {:>5.1}% | {} preemptions, {} spills",
            name,
            mld,
            report.class_latency(ModelKind::Mdm).p95,
            report.class_latency(ModelKind::StableDiffusion).p95,
            100.0 * report.slo_attainment,
            report.preemptions,
            report.latent_spills,
        );
    }
    if let [edf, pre] = urgent_p95[..] {
        println!(
            "  urgent-class p95 improvement: {:.1}x (iteration-boundary preemption \
             bounds head-of-line blocking)",
            edf / pre.max(1e-9)
        );
    }

    // Admission control: shedding/degrading infeasible arrivals makes
    // goodput saturate at the knee instead of collapsing past it.
    println!();
    admission_section(horizon_ms, "deadline");

    // Sharding: when one model's weight working set exceeds a single
    // instance's GSC, a TP/PP gang with per-shard residency beats
    // replicating the thrashing whole model — up to the load where the
    // replicas' independent queues win back the throughput.
    println!();
    sharded_comparison(horizon_ms);

    // Auto-placement: the planner picks the replicas-vs-gangs split per
    // load regime by itself, and re-plans (with a priced migration) when
    // the diurnal ramp's realized load diverges from its forecast.
    println!();
    planned_comparison(horizon_ms);

    // Fault injection: the same trace with faults on and off, replicated
    // vs TP=2 — replicas degrade gracefully, a gang losing one member
    // loses the whole gang's capacity until repair.
    println!();
    chaos_section(horizon_ms);

    // Latency attribution: where the representative scenario's requests
    // actually spend their time, and what the misses died of.
    println!();
    attribution_section(horizon_ms, "default");

    println!();
    maybe_export_chrome_trace(horizon_ms, "default");
}
