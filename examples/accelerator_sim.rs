//! Cycle-level simulation of the EXION accelerator on the DiT benchmark:
//! latency, energy, engine breakdown, and the ablation ladder of Fig. 18.
//!
//! ```sh
//! cargo run --release --example accelerator_sim
//! ```

use exion::model::{ModelConfig, ModelKind};
use exion::sim::config::HwConfig;
use exion::sim::energy::Engine;
use exion::sim::perf::{simulate_model, SimAblation};
use exion::sim::workload::SparsityProfile;

fn main() {
    let model = ModelConfig::for_kind(ModelKind::Dit);
    let hw = HwConfig::exion24();
    println!(
        "simulating {} ({} iterations, paper-scale dims) on {} ({:.1} peak TOPS, {:.0} GB/s)\n",
        model.kind.name(),
        model.iterations,
        hw.name,
        hw.peak_tops(),
        hw.dram_gbps,
    );

    // Sparsity profile from the closed-form tile model at the paper's
    // per-model settings (the bench harness uses measured profiles instead).
    let profile = SparsityProfile::analytic(
        model.ffn_reuse.target_sparsity,
        model.ep.paper_sparsity_pct / 100.0,
        16,
    );

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "config", "latency", "energy", "eff. TOPS", "TOPS/W"
    );
    for ablation in SimAblation::ALL {
        let r = simulate_model(&hw, &model, &profile, ablation, 1);
        println!(
            "{:<14} {:>9.2} ms {:>9.1} mJ {:>14.1} {:>12.2}",
            r.name, r.latency_ms, r.energy_mj, r.effective_tops, r.tops_per_watt,
        );
    }

    let all = simulate_model(&hw, &model, &profile, SimAblation::All, 1);
    println!("\nenergy breakdown of {} (Table III components):", all.name);
    for (engine, mj) in &all.detail.engine_energy_mj {
        println!(
            "  {:<28} {:>10.2} mJ ({:>4.1}%)",
            engine.name(),
            mj,
            100.0 * all.engine_share(*engine),
        );
    }
    println!(
        "  DRAM                         {:>10.2} mJ",
        all.detail.dram_energy_mj
    );
    println!(
        "\nDRAM traffic: {:.1} MiB read, row-hit rate {:.1}%",
        all.detail.dram_stats.bytes_read as f64 / (1 << 20) as f64,
        100.0 * all.detail.dram_stats.hit_rate(),
    );
    println!(
        "engine busy cycles: SDUE {:.2e}, EPRE {:.2e}, CFSE {:.2e}, CAU {:.2e}",
        all.detail.busy.sdue, all.detail.busy.epre, all.detail.busy.cfse, all.detail.busy.cau,
    );
    let _ = Engine::ALL; // (all engines reported above)
}
